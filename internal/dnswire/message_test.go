package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func sampleMessage() *Message {
	m := NewQuery(0x1234, "www.examp.le", TypeA)
	r := m.Reply()
	r.Flags.Authoritative = true
	r.Answers = []RR{
		{Name: "www.examp.le", Type: TypeCNAME, Class: ClassIN, TTL: 300, Data: CNAME{Target: "foob.ar"}},
		{Name: "foob.ar", Type: TypeA, Class: ClassIN, TTL: 60, Data: A{Addr: mustAddr("10.0.0.2")}},
	}
	r.Authority = []RR{
		{Name: "foob.ar", Type: TypeNS, Class: ClassIN, TTL: 3600, Data: NS{Host: "ns.foob.ar"}},
	}
	r.Extra = []RR{
		{Name: "ns.foob.ar", Type: TypeA, Class: ClassIN, TTL: 3600, Data: A{Addr: mustAddr("10.0.0.53")}},
	}
	return r
}

func TestMessageRoundTrip(t *testing.T) {
	orig := sampleMessage()
	wire, err := orig.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mismatch:\norig: %+v\ngot:  %+v", orig, got)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(42, "name.com", TypeAAAA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Flags.Response || len(got.Questions) != 1 {
		t.Fatalf("bad query decode: %+v", got)
	}
	if got.Questions[0].Name != "name.com" || got.Questions[0].Type != TypeAAAA {
		t.Errorf("question = %v", got.Questions[0])
	}
	if !got.Flags.RecursionDesired {
		t.Error("RD not set")
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Pack the same message with compression defeated by using a fresh
	// comp map per name is not exposed; instead verify the packed form is
	// smaller than the sum of uncompressed name encodings by checking a
	// known bound: "foob.ar" appears 3 times as owner/target but should be
	// encoded in full at most once.
	count := strings.Count(string(packed), "\x04foob\x02ar")
	if count != 1 {
		t.Errorf("foob.ar encoded in full %d times, want 1", count)
	}
}

func TestRDataRoundTrips(t *testing.T) {
	rrs := []RR{
		{Name: "a.test", Type: TypeA, Class: ClassIN, TTL: 1, Data: A{Addr: mustAddr("192.0.2.1")}},
		{Name: "b.test", Type: TypeAAAA, Class: ClassIN, TTL: 1, Data: AAAA{Addr: mustAddr("2001:db8::1")}},
		{Name: "c.test", Type: TypeCNAME, Class: ClassIN, TTL: 1, Data: CNAME{Target: "target.test"}},
		{Name: "d.test", Type: TypeNS, Class: ClassIN, TTL: 1, Data: NS{Host: "ns1.test"}},
		{Name: "e.test", Type: TypePTR, Class: ClassIN, TTL: 1, Data: PTR{Target: "p.test"}},
		{Name: "f.test", Type: TypeMX, Class: ClassIN, TTL: 1, Data: MX{Preference: 10, Host: "mx.test"}},
		{Name: "g.test", Type: TypeTXT, Class: ClassIN, TTL: 1, Data: TXT{Strings: []string{"hello", "world"}}},
		{Name: "h.test", Type: TypeSOA, Class: ClassIN, TTL: 1, Data: SOA{
			MName: "ns1.test", RName: "hostmaster.test",
			Serial: 2016031500, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		}},
		{Name: "i.test", Type: Type(99), Class: ClassIN, TTL: 1, Data: Raw{Bytes: []byte{1, 2, 3}}},
	}
	m := &Message{ID: 7, Answers: rrs}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Answers, got.Answers) {
		t.Errorf("answers mismatch:\nwant %v\ngot  %v", m.Answers, got.Answers)
	}
}

func TestUnpackRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 11),
		// Header claiming one question but no question bytes.
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0},
	}
	for i, c := range cases {
		if _, err := Unpack(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestUnpackRejectsHugeCounts(t *testing.T) {
	hdr := make([]byte, 12)
	hdr[4], hdr[5] = 0xFF, 0xFF // QDCOUNT = 65535
	if _, err := Unpack(hdr); err == nil {
		t.Error("huge QDCOUNT accepted")
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		// Zero the Z bits (4..6) which Flags does not model.
		v &^= 0x0070
		return unpackFlags(v).pack() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeCNAME.String() != "CNAME" || Type(999).String() != "TYPE999" {
		t.Error("Type.String wrong")
	}
	if got, err := ParseType("aaaa"); err != nil || got != TypeAAAA {
		t.Errorf("ParseType(aaaa) = %v, %v", got, err)
	}
	if _, err := ParseType("nope"); err == nil {
		t.Error("ParseType(nope) accepted")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" {
		t.Error("RCode.String wrong")
	}
	if ClassIN.String() != "IN" {
		t.Error("Class.String wrong")
	}
}

func TestMessageString(t *testing.T) {
	s := sampleMessage().String()
	for _, want := range []string{"QUESTION", "ANSWER", "AUTHORITY", "ADDITIONAL", "foob.ar", "NOERROR"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestAppendPackAtOffset(t *testing.T) {
	// A message appended after a 2-byte TCP length prefix must still
	// produce message-relative compression pointers.
	m := sampleMessage()
	buf := []byte{0xAA, 0xBB}
	buf, err := m.AppendPack(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("offset pack round trip mismatch")
	}
}

func randomRR(r *rand.Rand) RR {
	name := randomName(r)
	switch r.Intn(5) {
	case 0:
		var b [4]byte
		r.Read(b[:])
		return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: r.Uint32(), Data: A{Addr: netip.AddrFrom4(b)}}
	case 1:
		var b [16]byte
		r.Read(b[:])
		b[0] = 0x20 // keep it a real IPv6 address, not 4-in-6
		return RR{Name: name, Type: TypeAAAA, Class: ClassIN, TTL: r.Uint32(), Data: AAAA{Addr: netip.AddrFrom16(b)}}
	case 2:
		return RR{Name: name, Type: TypeCNAME, Class: ClassIN, TTL: r.Uint32(), Data: CNAME{Target: randomName(r)}}
	case 3:
		return RR{Name: name, Type: TypeNS, Class: ClassIN, TTL: r.Uint32(), Data: NS{Host: randomName(r)}}
	default:
		return RR{Name: name, Type: TypeTXT, Class: ClassIN, TTL: r.Uint32(), Data: TXT{Strings: []string{randomName(r)}}}
	}
}

func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			ID:    uint16(r.Uint32()),
			Flags: Flags{Response: true, Authoritative: r.Intn(2) == 0},
		}
		m.Questions = append(m.Questions, Question{Name: randomName(r), Type: TypeA, Class: ClassIN})
		for i, n := 0, r.Intn(6); i < n; i++ {
			m.Answers = append(m.Answers, randomRR(r))
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			m.Authority = append(m.Authority, randomRR(r))
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestUnpackNeverPanics throws random bytes at the decoder; it must return
// an error or a message, never panic or loop.
func TestUnpackNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestUnpackMutatedPack packs a valid message, flips random bytes, and
// checks the decoder stays well-behaved.
func TestUnpackMutatedPack(t *testing.T) {
	base, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), base...)
		for j, n := 0, 1+r.Intn(4); j < n; j++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		_, _ = Unpack(mut) // must not panic
	}
}
