package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"dpsadopt/internal/simtime"
)

// On-disk format: a flate-free framed binary archive (the columns are
// already dictionary-encoded; callers can compress the file externally).
//
//	magic "DPSA" | version u32
//	dict: count u32, then per string: len u16 + bytes
//	partitions: count u32, then per partition:
//	  source len u16 + bytes | day i64 | rows u32 | v6 count u32 |
//	  asnVals count u32 | columns in order (domains, kinds, addrs,
//	  addrs6, strs, asnOff, asnVals)
//
// Version 3 appends a partition directory after the partitions so large
// datasets can be opened without decoding every day block:
//
//	directory: count u32, then per partition:
//	  source len u16 + bytes | day i64 | rows u32 |
//	  offset u64 | length u64      (byte range of the partition)
//	footer: directory offset u64 | magic "DPSD"
//
// Version 2 readers that stop after the partition count are unaffected
// (the directory is trailing data), and version 3 readers fall back to a
// full sequential decode on version 2 files, which have no directory.
//
// All integers are little-endian. Partitions are written in sorted
// (source, day) order, so saving the same store twice yields identical
// bytes.

const (
	persistMagic   = "DPSA"
	persistVersion = 3
	dirMagic       = "DPSD"
	footerSize     = 8 + 4 // directory offset + dirMagic
)

// ErrNoDirectory reports a dataset written before the partition
// directory existed (version 2); callers fall back to a full Load.
var ErrNoDirectory = errors.New("store: dataset has no partition directory")

// PartitionInfo describes one (source, day) partition listed in a
// dataset file's directory.
type PartitionInfo struct {
	Source string
	Day    simtime.Day
	Rows   int

	offset, length uint64
}

// Save writes the store to path atomically (via a temp file + rename).
func (s *Store) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := s.encode(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a store written by Save (any supported version).
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	s, err := decode(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	// Version 3 files carry a directory + footer after the partitions;
	// verifying it catches truncation that a sequential decode (which
	// stops after the last partition) would let through.
	if version >= 3 {
		if _, err := readDirectory(f); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// LoadPartition decodes a single (source, day) partition from a dataset
// file, plus the shared dictionary, without decoding any other day
// block. On version 2 files (no directory) it falls back to a full
// decode and prunes. The returned store contains exactly one partition.
func LoadPartition(path, source string, day simtime.Day) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if version < 3 {
		// Legacy: no directory to seek by. Decode everything, keep one.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		s, err := decode(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return nil, err
		}
		if s.blocks[source][day] == nil {
			return nil, fmt.Errorf("store: no partition %s/%s in %s", source, day, path)
		}
		for _, src := range s.Sources() {
			for _, d := range s.Days(src) {
				if src != source || d != day {
					s.DropDay(src, d)
				}
			}
		}
		return s, nil
	}
	dir, err := readDirectory(f)
	if err != nil {
		return nil, err
	}
	var ent *PartitionInfo
	for i := range dir {
		if dir[i].Source == source && dir[i].Day == day {
			ent = &dir[i]
			break
		}
	}
	if ent == nil {
		return nil, fmt.Errorf("store: no partition %s/%s in %s", source, day, path)
	}
	// The dictionary immediately follows the 8-byte header.
	if _, err := f.Seek(8, io.SeekStart); err != nil {
		return nil, err
	}
	s := New()
	if err := readDict(bufio.NewReaderSize(f, 1<<20), s); err != nil {
		return nil, err
	}
	sec := io.NewSectionReader(f, int64(ent.offset), int64(ent.length))
	if err := readPartition(bufio.NewReaderSize(sec, 1<<20), s); err != nil {
		return nil, err
	}
	return s, nil
}

// Directory reads a dataset file's partition listing without decoding
// any data. Version 2 files return ErrNoDirectory.
func Directory(path string) ([]PartitionInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if version < 3 {
		return nil, ErrNoDirectory
	}
	return readDirectory(f)
}

// readHeader validates the magic and returns the format version.
func readHeader(f *os.File) (uint32, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, err
	}
	if string(hdr[:4]) != persistMagic {
		return 0, fmt.Errorf("store: not a dataset file")
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version != 2 && version != persistVersion {
		return 0, fmt.Errorf("store: unsupported version %d", version)
	}
	return version, nil
}

// readDirectory parses the footer and partition directory of a v3 file.
func readDirectory(f *os.File) ([]PartitionInfo, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < footerSize {
		return nil, fmt.Errorf("store: file too short for directory footer")
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, err
	}
	if string(foot[8:]) != dirMagic {
		return nil, fmt.Errorf("store: directory footer missing or corrupt")
	}
	dirOff := binary.LittleEndian.Uint64(foot[:8])
	if dirOff >= uint64(size-footerSize) {
		return nil, fmt.Errorf("store: directory offset out of range")
	}
	r := bufio.NewReader(io.NewSectionReader(f, int64(dirOff), size-footerSize-int64(dirOff)))
	count, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if count > maxPersistCount {
		return nil, fmt.Errorf("store: directory too large")
	}
	out := make([]PartitionInfo, 0, count)
	for i := uint32(0); i < count; i++ {
		var ent PartitionInfo
		if ent.Source, err = readStr(r); err != nil {
			return nil, err
		}
		var day int64
		if err := binary.Read(r, binary.LittleEndian, &day); err != nil {
			return nil, err
		}
		ent.Day = simtime.Day(day)
		rows, err := readU32(r)
		if err != nil {
			return nil, err
		}
		ent.Rows = int(rows)
		var buf [16]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		ent.offset = binary.LittleEndian.Uint64(buf[:8])
		ent.length = binary.LittleEndian.Uint64(buf[8:])
		if ent.offset+ent.length > uint64(size) {
			return nil, fmt.Errorf("store: directory entry out of range")
		}
		out = append(out, ent)
	}
	return out, nil
}

// offsetWriter tracks the byte offset of everything written through it,
// so encode can record partition positions for the directory.
type offsetWriter struct {
	w io.Writer
	n uint64
}

func (o *offsetWriter) Write(p []byte) (int, error) {
	n, err := o.w.Write(p)
	o.n += uint64(n)
	return n, err
}

func (s *Store) encode(dst io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w := &offsetWriter{w: dst}
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := writeU32(w, persistVersion); err != nil {
		return err
	}
	// Dictionary.
	s.dict.mu.RLock()
	strs := s.dict.strs
	if err := writeU32(w, uint32(len(strs))); err != nil {
		s.dict.mu.RUnlock()
		return err
	}
	for _, str := range strs {
		if err := writeStr(w, str); err != nil {
			s.dict.mu.RUnlock()
			return err
		}
	}
	s.dict.mu.RUnlock()
	// Partitions, in sorted (source, day) order for deterministic bytes.
	sources := make([]string, 0, len(s.blocks))
	for src := range s.blocks {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	nParts := 0
	for _, days := range s.blocks {
		nParts += len(days)
	}
	if err := writeU32(w, uint32(nParts)); err != nil {
		return err
	}
	dir := make([]PartitionInfo, 0, nParts)
	for _, source := range sources {
		days := make([]simtime.Day, 0, len(s.blocks[source]))
		for day := range s.blocks[source] {
			days = append(days, day)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		for _, day := range days {
			b := s.blocks[source][day]
			start := w.n
			if err := writePartition(w, source, day, b); err != nil {
				return err
			}
			dir = append(dir, PartitionInfo{
				Source: source, Day: day, Rows: b.rows(),
				offset: start, length: w.n - start,
			})
		}
	}
	// Directory + footer.
	dirOff := w.n
	if err := writeU32(w, uint32(len(dir))); err != nil {
		return err
	}
	for _, ent := range dir {
		if err := writeStr(w, ent.Source); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, int64(ent.Day)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(ent.Rows)); err != nil {
			return err
		}
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], ent.offset)
		binary.LittleEndian.PutUint64(buf[8:], ent.length)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[:8], dirOff)
	copy(foot[8:], dirMagic)
	_, err := w.Write(foot[:])
	return err
}

// writePartition serialises one (source, day) block.
func writePartition(w io.Writer, source string, day simtime.Day, b *dayBlock) error {
	if err := writeStr(w, source); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(day)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(b.rows())); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(b.addrs6))); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(b.asnVals))); err != nil {
		return err
	}
	if err := writeU32s(w, b.domains); err != nil {
		return err
	}
	kinds := make([]byte, len(b.kinds))
	for i, k := range b.kinds {
		kinds[i] = byte(k)
	}
	if _, err := w.Write(kinds); err != nil {
		return err
	}
	if err := writeU32s(w, b.addrs); err != nil {
		return err
	}
	for _, a := range b.addrs6 {
		if _, err := w.Write(a[:]); err != nil {
			return err
		}
	}
	if err := writeU32s(w, b.strs); err != nil {
		return err
	}
	if err := writeU32s(w, b.asnOff); err != nil {
		return err
	}
	return writeU32s(w, b.asnVals)
}

// maxPersistCount bounds per-section element counts on load.
const maxPersistCount = 1 << 30

func decode(r io.Reader) (*Store, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if string(magic[:]) != persistMagic {
		return nil, fmt.Errorf("store: not a dataset file")
	}
	version, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if version != 2 && version != persistVersion {
		return nil, fmt.Errorf("store: unsupported version %d", version)
	}
	s := New()
	if err := readDict(r, s); err != nil {
		return nil, err
	}
	nParts, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nParts; i++ {
		if err := readPartition(r, s); err != nil {
			return nil, err
		}
	}
	// Trailing directory + footer bytes (version 3) are intentionally
	// left unread: a full decode has no use for them.
	return s, nil
}

// readDict decodes the shared dictionary into s.
func readDict(r io.Reader, s *Store) error {
	nStrs, err := readU32(r)
	if err != nil {
		return err
	}
	if nStrs > maxPersistCount {
		return fmt.Errorf("store: dictionary too large")
	}
	for i := uint32(0); i < nStrs; i++ {
		str, err := readStr(r)
		if err != nil {
			return err
		}
		s.dict.ID(str)
	}
	return nil
}

// readPartition decodes one (source, day) block, validates it, and
// installs it in s.
func readPartition(r io.Reader, s *Store) error {
	source, err := readStr(r)
	if err != nil {
		return err
	}
	var day int64
	if err := binary.Read(r, binary.LittleEndian, &day); err != nil {
		return err
	}
	rows, err := readU32(r)
	if err != nil {
		return err
	}
	nV6, err := readU32(r)
	if err != nil {
		return err
	}
	nASN, err := readU32(r)
	if err != nil {
		return err
	}
	if rows > maxPersistCount || nV6 > rows || nASN > maxPersistCount {
		return fmt.Errorf("store: corrupt partition header")
	}
	b := &dayBlock{}
	if b.domains, err = readU32s(r, rows); err != nil {
		return err
	}
	kinds := make([]byte, rows)
	if _, err := io.ReadFull(r, kinds); err != nil {
		return err
	}
	b.kinds = make([]Kind, rows)
	for j, k := range kinds {
		if Kind(k) >= numKinds {
			return fmt.Errorf("store: bad kind %d", k)
		}
		b.kinds[j] = Kind(k)
	}
	if b.addrs, err = readU32s(r, rows); err != nil {
		return err
	}
	b.addrs6 = make([][16]byte, nV6)
	for j := range b.addrs6 {
		if _, err := io.ReadFull(r, b.addrs6[j][:]); err != nil {
			return err
		}
	}
	if b.strs, err = readU32s(r, rows); err != nil {
		return err
	}
	if b.asnOff, err = readU32s(r, rows); err != nil {
		return err
	}
	if b.asnVals, err = readU32s(r, nASN); err != nil {
		return err
	}
	if err := validateBlock(b, s.dict.Len()); err != nil {
		return err
	}
	days := s.blocks[source]
	if days == nil {
		days = make(map[simtime.Day]*dayBlock)
		s.blocks[source] = days
	}
	days[simtime.Day(day)] = b
	mPartitions.Inc()
	mResidentRows.Add(float64(b.rows()))
	return nil
}

// validateBlock checks cross-column invariants of a loaded partition so a
// corrupt file cannot cause out-of-range panics later.
func validateBlock(b *dayBlock, dictLen int) error {
	for i := range b.domains {
		if int(b.domains[i]) >= dictLen {
			return fmt.Errorf("store: domain id out of range")
		}
		if b.strs[i] != ^uint32(0) && int(b.strs[i]) >= dictLen {
			return fmt.Errorf("store: string id out of range")
		}
		if isV6Kind(b.kinds[i]) && int(b.addrs[i]) >= len(b.addrs6) {
			return fmt.Errorf("store: v6 index out of range")
		}
		if int(b.asnOff[i]) > len(b.asnVals) {
			return fmt.Errorf("store: ASN offset out of range")
		}
		if i > 0 && b.asnOff[i] < b.asnOff[i-1] {
			return fmt.Errorf("store: ASN offsets not monotone")
		}
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeU32s(w io.Writer, vals []uint32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	_, err := w.Write(buf)
	return err
}

func readU32s(r io.Reader, n uint32) ([]uint32, error) {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out, nil
}

func writeStr(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("store: string too long")
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readStr(r io.Reader) (string, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.LittleEndian.Uint16(b[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
