// Package api is the serving layer: a high-QPS HTTP JSON service that
// answers detection queries against a loaded measurement dataset.
//
// The paper's output — per-domain, per-day DPS detection and
// per-provider adoption series — is produced offline; this package turns
// it into something that serves. At load time, NewIndex runs the §3.3
// detection pass once per partition and builds read-optimized inverted
// structures (domain → packed detection-interval list, provider → daily
// series), so no request ever scans columnar data. The hot path is then
// layered, outermost first:
//
//  1. Admission control: a token bucket (429 when the offered rate
//     exceeds the configured QPS), a bounded concurrency gate (503 when
//     the deadline expires while waiting for a slot), and a per-request
//     deadline — load is shed at the edge instead of queueing
//     unboundedly, in the spirit of layered-defense frontends.
//  2. A sharded LRU response cache (power-of-two shards, per-shard
//     mutex) holding fully rendered JSON bodies.
//  3. Singleflight coalescing: N concurrent misses for one key perform
//     one index walk and share the bytes.
//  4. The index lookup itself, lock-free on the immutable Index.
//
// Every request is counted (api_requests_total{route_code}), timed
// (api_request_seconds with trace exemplars), and optionally traced with
// a per-request root span.
package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dpsadopt/internal/obs"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/trace"
)

// Config tunes the server's admission and caching layers.
type Config struct {
	// QPS is the sustained admitted request rate; <= 0 disables rate
	// limiting.
	QPS float64
	// Burst is the token bucket depth (default: QPS, at least 1).
	Burst int
	// MaxInflight bounds concurrently handled requests (default 256).
	MaxInflight int
	// Timeout is the per-request deadline, covering both the wait for a
	// concurrency slot and the handler itself (default 2s).
	Timeout time.Duration
	// CacheEntries sizes the response cache: 0 means the 4096 default,
	// negative disables caching.
	CacheEntries int
	// CacheShards is rounded up to a power of two (default 16).
	CacheShards int
	// Tracer, when enabled, opens a sampled root span per request and
	// links latency histogram buckets to trace IDs via exemplars.
	Tracer *trace.Tracer
	// Observatory overrides the windowed query observatory (rolling
	// latency/error windows, SLO scorecard, slow-query log, heavy-hitter
	// sketches). Nil builds a default one with DefaultSLOs on the
	// process registry; set ObservatoryOff to run without one.
	Observatory *obs.Observatory
	// ObservatoryOff disables the observatory entirely (benchmarks use
	// this to measure the hot path's windowing overhead).
	ObservatoryOff bool
}

// Server answers the /v1 routes from an immutable Index. The index is
// held behind an atomic pointer so a follower can publish a successor
// (Publish) without stopping the request flow: every request resolves
// the pointer once and serves consistently from that snapshot.
type Server struct {
	idx    atomic.Pointer[Index]
	cfg    Config
	cache  *shardedCache // nil when disabled
	flight *flightGroup
	bucket *tokenBucket // nil when unlimited
	gate   chan struct{}
	mux    *http.ServeMux
	obsv   *obs.Observatory // nil when ObservatoryOff
	// Heavy-hitter sketches, resolved once at construction so finish
	// skips the per-request dimension lookup.
	topkDomain   *obs.TopK
	topkProvider *obs.TopK

	// testHook, when set by tests, runs inside the concurrency gate
	// before the handler — it simulates slow handlers for shed tests.
	testHook func(route string)
	// flightHook, when set by tests, runs inside the singleflight
	// leader's computation — it lets tests hold a flight open and count
	// real index walks.
	flightHook func()

	// freshFn, when set (SetFreshnessFunc), contributes live follower
	// freshness to /v1/stats. Holds a func() *Freshness.
	freshFn atomic.Value
}

// NewServer builds a server for an index.
func NewServer(idx *Index, cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	s := &Server{
		cfg:    cfg,
		flight: newFlightGroup(),
		gate:   make(chan struct{}, cfg.MaxInflight),
	}
	s.idx.Store(idx)
	if cfg.CacheEntries > 0 {
		s.cache = newCache(cfg.CacheEntries, cfg.CacheShards)
	}
	if cfg.QPS > 0 {
		s.bucket = newTokenBucket(cfg.QPS, cfg.Burst)
	}
	if !cfg.ObservatoryOff {
		s.obsv = cfg.Observatory
		if s.obsv == nil {
			s.obsv = newDefaultObservatory()
		}
		s.topkDomain = s.obsv.Sketch("domain")
		s.topkProvider = s.obsv.Sketch("provider")
	}
	s.mux = http.NewServeMux()
	s.Register(s.mux)
	return s
}

// Register mounts the /v1 routes on an external mux (so a binary can
// serve them alongside /metrics and /debug endpoints on one listener).
func (s *Server) Register(mux *http.ServeMux) {
	mux.Handle("GET /v1/domain/{name}", s.route("domain", s.handleDomain))
	mux.Handle("GET /v1/provider/{name}/series", s.route("series", s.handleSeries))
	mux.Handle("GET /v1/day/{date}", s.route("day", s.handleDay))
	mux.Handle("GET /v1/stats", s.route("stats", s.handleStats))
	if s.obsv != nil {
		mux.Handle("GET /debug/slo", s.obsv.SLOHandler())
		mux.Handle("GET /debug/slowlog", s.obsv.SlowLogHandler())
		mux.Handle("GET /debug/topk", s.obsv.TopKHandler())
	}
}

// Observatory returns the server's query observatory (nil when
// disabled).
func (s *Server) Observatory() *obs.Observatory { return s.obsv }

// Handler returns the server's own mux (API routes only).
func (s *Server) Handler() http.Handler { return s.mux }

// route wraps one handler with the full serving stack: admission
// (bucket → gate → deadline), tracing, cache + coalescing, metrics.
func (s *Server) route(name string, fn func(r *http.Request) cached) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.bucket != nil && !s.bucket.allow() {
			mRateLimited.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(s.bucket.retryAfterSeconds()))
			s.finish(w, r, name, start, nil, errResponse(http.StatusTooManyRequests, "rate limit exceeded"),
				obs.RequestOutcome{Admission: obs.AdmissionRateLimited})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		select {
		case s.gate <- struct{}{}:
		default:
			// Gate full: wait, but only as long as the request deadline —
			// the queue is bounded by MaxInflight waiters' deadlines, not
			// by memory.
			select {
			case s.gate <- struct{}{}:
			case <-ctx.Done():
				mShed.Inc()
				s.finish(w, r, name, start, nil, errResponse(http.StatusServiceUnavailable, "server overloaded"),
					obs.RequestOutcome{Admission: obs.AdmissionShed})
				return
			}
		}
		mInflight.Inc()
		defer func() { <-s.gate; mInflight.Dec() }()

		var sp *trace.Span
		if t := s.cfg.Tracer; t.Enabled() && t.SampleName(r.URL.Path) {
			ctx, sp = t.StartRoot(ctx, "api.request",
				trace.Str("route", name), trace.Str("path", r.URL.Path))
			defer sp.End()
		}
		r = r.WithContext(ctx)
		if s.testHook != nil {
			s.testHook(name)
		}
		val, hit, shared := s.respond(name, r, fn)
		s.finish(w, r, name, start, sp, val, obs.RequestOutcome{CacheHit: hit, Coalesced: shared})
	})
}

// respond resolves a request through cache and singleflight, reporting
// how it was satisfied for the observatory.
func (s *Server) respond(route string, r *http.Request, fn func(r *http.Request) cached) (val cached, hit, shared bool) {
	key := route + " " + r.URL.RequestURI()
	if s.cache == nil {
		val, shared = s.flight.do(key, func() cached {
			if s.flightHook != nil {
				s.flightHook()
			}
			return fn(r)
		})
		if shared {
			mCoalesced.Inc()
		}
		return val, false, shared
	}
	if val, ok := s.cache.get(key); ok {
		mCacheHits.Inc()
		return val, true, false
	}
	mCacheMisses.Inc()
	// The cache generation is read before the handler resolves the index
	// pointer: if a Publish lands in between, put rejects this (possibly
	// stale) fill instead of resurrecting an invalidated key.
	gen := s.cache.generation()
	val, shared = s.flight.do(key, func() cached {
		if s.flightHook != nil {
			s.flightHook()
		}
		val := fn(r)
		// Only successful and not-found answers are cacheable: both are
		// immutable facts of the served index generation. Errors are not,
		// and neither are volatile responses carrying live process state.
		if !val.volatile && (val.status == http.StatusOK || val.status == http.StatusNotFound) {
			s.cache.put(key, val, gen)
		}
		return val
	})
	if shared {
		mCoalesced.Inc()
	}
	return val, false, shared
}

// finish writes the response and records metrics, the span status, the
// latency exemplar, and the observatory's windowed/slowlog/heavy-hitter
// views.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, route string, start time.Time, sp *trace.Span, val cached, out obs.RequestOutcome) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(val.status)
	_, _ = w.Write(val.body)
	mRequests.With(fmt.Sprintf("%s:%d", route, val.status)).Inc()
	elapsed := time.Since(start)
	sec := elapsed.Seconds()
	h := mLatency.With(route)
	if sp != nil {
		sp.SetAttr(trace.Int("status", int64(val.status)))
		out.TraceID = sp.TraceID().String()
		h.ObserveExemplar(sec, out.TraceID)
	} else {
		h.Observe(sec)
	}
	if s.obsv != nil {
		// Detail only matters if the slow log will retain this request;
		// skip the URI build for the common fast one.
		if s.obsv.WouldRetain(route, sec) {
			out.Detail = r.URL.RequestURI()
		}
		s.obsv.RecordRequestAt(start.Add(elapsed), route, sec, val.status, out)
		// Heavy-hitter dimensions: which domains and providers the query
		// mix concentrates on, normalized the way the handlers match.
		switch route {
		case "domain":
			if name := strings.ToLower(strings.TrimSuffix(r.PathValue("name"), ".")); name != "" && len(name) <= maxDomainName {
				s.topkDomain.Offer(name)
			}
		case "series":
			if name := strings.ToLower(r.PathValue("name")); name != "" {
				s.topkProvider.Offer(name)
			}
		}
	}
}

// jsonResponse marshals v into a cached response.
func jsonResponse(status int, v any) cached {
	body, err := json.Marshal(v)
	if err != nil {
		return errResponse(http.StatusInternalServerError, "encoding failed")
	}
	return cached{status: status, body: append(body, '\n')}
}

// errResponse renders the uniform error body.
func errResponse(status int, msg string) cached {
	return cached{status: status, body: []byte(fmt.Sprintf("{\"error\":%q}\n", msg))}
}

// maxDomainName bounds /v1/domain path values (RFC 1035 name limit).
const maxDomainName = 253

func (s *Server) handleDomain(r *http.Request) cached {
	name := strings.ToLower(strings.TrimSuffix(r.PathValue("name"), "."))
	if name == "" || len(name) > maxDomainName || strings.ContainsAny(name, " /\\") {
		return errResponse(http.StatusBadRequest, "invalid domain name")
	}
	h, ok := s.Index().Domain(name)
	if !ok {
		return errResponse(http.StatusNotFound, "domain has no recorded DPS references")
	}
	return jsonResponse(http.StatusOK, h)
}

func (s *Server) handleSeries(r *http.Request) cached {
	name := r.PathValue("name")
	if name == "" {
		return errResponse(http.StatusBadRequest, "invalid provider name")
	}
	series, ok := s.Index().Series(name)
	if !ok {
		return errResponse(http.StatusNotFound, "unknown provider")
	}
	return jsonResponse(http.StatusOK, series)
}

func (s *Server) handleDay(r *http.Request) cached {
	day, err := simtime.Parse(r.PathValue("date"))
	if err != nil {
		return errResponse(http.StatusBadRequest, "invalid date, want YYYY-MM-DD")
	}
	info, ok := s.Index().Day(day)
	if !ok {
		return errResponse(http.StatusNotFound, "day not in dataset")
	}
	return jsonResponse(http.StatusOK, info)
}

// StatsResponse is the /v1/stats body: the dataset/index summary plus a
// live view of the serving process (Go version, GOMAXPROCS, CPU count,
// uptime, RSS) — the same facts the build_info/process_* metrics expose,
// for clients that speak JSON rather than Prometheus text.
type StatsResponse struct {
	Stats
	Process obs.ProcessInfo `json:"process"`
	// Observatory digests the rolling windows, SLO statuses, and
	// heavy-hitter heads; omitted when the observatory is disabled.
	Observatory *obs.ObservatorySummary `json:"observatory,omitempty"`
	// Freshness reports the live-follow state; omitted when the server
	// is not following a feed.
	Freshness *Freshness `json:"freshness,omitempty"`
}

func (s *Server) handleStats(r *http.Request) cached {
	resp := StatsResponse{
		Stats:       s.Index().Stats(),
		Process:     obs.ReadProcessInfo(),
		Observatory: s.obsv.Summary(),
	}
	if fn, ok := s.freshFn.Load().(func() *Freshness); ok {
		resp.Freshness = fn()
	}
	val := jsonResponse(http.StatusOK, resp)
	val.volatile = true
	return val
}
