package obs

import (
	"bufio"
	"bytes"
	"math"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"sync"
	"time"
)

// runtimeSampleNames are the runtime/metrics samples the collector polls.
// Gauges publish the latest value; the two Float64Histograms (GC pauses,
// scheduler latencies) are folded into registry histograms by bucket
// delta, so /metrics shows the distribution accumulated since the
// collector started rather than since process start.
const (
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmGomaxprocs  = "/sched/gomaxprocs:threads"
	rmHeapLive    = "/memory/classes/heap/objects:bytes"
	rmHeapGoal    = "/gc/heap/goal:bytes"
	rmHeapObjects = "/gc/heap/objects:objects"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmGCCPU       = "/cpu/classes/gc/total:cpu-seconds"
	rmTotalCPU    = "/cpu/classes/total:cpu-seconds"
	rmMutexWait   = "/sync/mutex/wait/total:seconds"
	rmGCPauses    = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
)

// runtimeHistBounds buckets GC pauses and scheduler latencies: 1µs to
// 100ms covers a healthy run through a badly contended one.
var runtimeHistBounds = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4,
	2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
}

// RuntimeCollector polls the Go runtime's own metrics
// (runtime/metrics) into a Registry so GC behavior, scheduler latency,
// goroutine counts and lock contention are first-class signals on
// /metrics next to the application's counters. One collector per
// process is the intended shape: binaries start it when they start the
// obs server, benches start it around a measured region.
type RuntimeCollector struct {
	reg      *Registry
	interval time.Duration

	gGoroutines  *Gauge
	gGomaxprocs  *Gauge
	gNumCPU      *Gauge
	gHeapLive    *Gauge
	gHeapGoal    *Gauge
	gHeapObjects *Gauge
	gGCCycles    *Gauge
	gGCCPU       *Gauge
	gTotalCPU    *Gauge
	gMutexWait   *Gauge
	gUptime      *Gauge
	gStart       *Gauge
	gRSS         *Gauge
	hGCPause     *Histogram
	hSchedLat    *Histogram

	samples   []metrics.Sample
	prevPause metrics.Float64Histogram
	prevSched metrics.Float64Histogram

	start     time.Time
	mu        sync.Mutex // serializes Poll (ticker loop vs explicit calls)
	polls     int64
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// StartRuntimeCollector registers the runtime metric families on reg and
// starts a poll loop at the given interval (<= 0 defaults to 5s). Close
// stops the loop; the collector polls once synchronously before
// returning so the gauges are live immediately.
func StartRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	c := &RuntimeCollector{
		reg:      reg,
		interval: interval,
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),

		gGoroutines: reg.Gauge("go_goroutines", "live goroutines"),
		gGomaxprocs: reg.Gauge("go_gomaxprocs", "current GOMAXPROCS"),
		gNumCPU:     reg.Gauge("process_num_cpu", "runtime.NumCPU() of the host"),
		gHeapLive:   reg.Gauge("go_heap_live_bytes", "bytes of live heap objects"),
		gHeapGoal:   reg.Gauge("go_heap_goal_bytes", "GC pacer heap goal"),
		gHeapObjects: reg.Gauge("go_heap_objects",
			"live heap objects"),
		gGCCycles: reg.Gauge("go_gc_cycles_total", "completed GC cycles"),
		gGCCPU: reg.Gauge("go_gc_cpu_seconds_total",
			"estimated CPU seconds spent in the garbage collector"),
		gTotalCPU: reg.Gauge("go_cpu_seconds_total",
			"estimated total available CPU seconds (runtime accounting)"),
		gMutexWait: reg.Gauge("go_mutex_wait_seconds_total",
			"cumulative seconds goroutines have waited on contended sync primitives"),
		gUptime: reg.Gauge("process_uptime_seconds", "seconds since the collector started"),
		gStart: reg.Gauge("process_start_time_seconds",
			"unix time the collector started"),
		gRSS: reg.Gauge("process_rss_bytes",
			"resident set size from /proc/self/statm (0 where unavailable)"),
		hGCPause: reg.Histogram("go_gc_pause_seconds",
			"stop-the-world GC pause durations", runtimeHistBounds),
		hSchedLat: reg.Histogram("go_sched_latency_seconds",
			"time goroutines spent runnable before running", runtimeHistBounds),
	}
	// build_info carries the toolchain as a label, value pinned to 1 —
	// the standard shape for joining version info onto other series.
	reg.GaugeVec("build_info", "Go toolchain the binary was built with",
		"goversion").With(runtime.Version()).Set(1)
	c.gStart.Set(float64(c.start.UnixNano()) / 1e9)

	for _, name := range []string{
		rmGoroutines, rmGomaxprocs, rmHeapLive, rmHeapGoal, rmHeapObjects,
		rmGCCycles, rmGCCPU, rmTotalCPU, rmMutexWait, rmGCPauses, rmSchedLat,
	} {
		c.samples = append(c.samples, metrics.Sample{Name: name})
	}
	c.Poll()
	go c.loop()
	return c
}

func (c *RuntimeCollector) loop() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.Poll()
		}
	}
}

// Poll reads the runtime metrics once and updates the registry. The
// ticker loop calls it on its interval; callers may also invoke it
// directly (e.g. right before snapshotting a benchmark cell).
func (c *RuntimeCollector) Poll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case rmGoroutines:
			c.gGoroutines.Set(float64(s.Value.Uint64()))
		case rmGomaxprocs:
			c.gGomaxprocs.Set(float64(s.Value.Uint64()))
		case rmHeapLive:
			c.gHeapLive.Set(float64(s.Value.Uint64()))
		case rmHeapGoal:
			c.gHeapGoal.Set(float64(s.Value.Uint64()))
		case rmHeapObjects:
			c.gHeapObjects.Set(float64(s.Value.Uint64()))
		case rmGCCycles:
			c.gGCCycles.Set(float64(s.Value.Uint64()))
		case rmGCCPU:
			c.gGCCPU.Set(s.Value.Float64())
		case rmTotalCPU:
			c.gTotalCPU.Set(s.Value.Float64())
		case rmMutexWait:
			c.gMutexWait.Set(s.Value.Float64())
		case rmGCPauses:
			foldHistogramDelta(c.hGCPause, &c.prevPause, s.Value.Float64Histogram())
		case rmSchedLat:
			foldHistogramDelta(c.hSchedLat, &c.prevSched, s.Value.Float64Histogram())
		}
	}
	c.gNumCPU.Set(float64(runtime.NumCPU()))
	c.gUptime.Set(time.Since(c.start).Seconds())
	c.gRSS.Set(float64(readRSSBytes()))
	c.polls++
}

// Polls returns how many times the collector has read the runtime
// metrics (tests use it to prove the loop stopped).
func (c *RuntimeCollector) Polls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.polls
}

// Close stops the poll loop and waits for it to exit. Safe to call more
// than once.
func (c *RuntimeCollector) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	<-c.done
}

// foldHistogramDelta transfers the observations a runtime cumulative
// histogram gained since the previous poll into an obs histogram, one
// ObserveN per changed bucket at the bucket midpoint. prev is updated to
// cur's counts. Runtime histograms keep stable bucket layouts for the
// life of the process; if the layout ever changes, the fold restarts
// from zero rather than guessing a mapping.
func foldHistogramDelta(h *Histogram, prev *metrics.Float64Histogram, cur *metrics.Float64Histogram) {
	if cur == nil {
		return
	}
	sameLayout := len(prev.Buckets) == len(cur.Buckets) && len(prev.Counts) == len(cur.Counts)
	for i := 0; sameLayout && i < len(prev.Buckets); i++ {
		sameLayout = prev.Buckets[i] == cur.Buckets[i]
	}
	for i, n := range cur.Counts {
		if sameLayout {
			n -= prev.Counts[i]
		}
		if n == 0 {
			continue
		}
		// The extreme runtime buckets are open-ended; clamp to the
		// finite edge so the fold stays inside real values.
		lo, hi := cur.Buckets[i], cur.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		h.ObserveN(lo+(hi-lo)/2, n)
	}
	prev.Buckets = append(prev.Buckets[:0], cur.Buckets...)
	prev.Counts = append(prev.Counts[:0], cur.Counts...)
}

// readRSSBytes reads the resident set size from /proc/self/statm
// (field 2, in pages). Returns 0 on platforms or sandboxes without it.
func readRSSBytes() int64 {
	raw, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Split(bufio.ScanWords)
	if !sc.Scan() || !sc.Scan() { // skip total size, take resident
		return 0
	}
	pages, err := strconv.ParseInt(sc.Text(), 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// ProcessInfo is a point-in-time description of the running process for
// embedding in API responses (dpsapi /v1/stats) and bench metadata.
type ProcessInfo struct {
	GoVersion  string  `json:"go_version"`
	Gomaxprocs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	UptimeSec  float64 `json:"uptime_seconds"`
	RSSBytes   int64   `json:"rss_bytes"`
}

// processStart pins process "uptime" to package init, close enough to
// exec for human consumption and independent of collector lifecycle.
var processStart = time.Now()

// ReadProcessInfo captures the current process facts.
func ReadProcessInfo() ProcessInfo {
	return ProcessInfo{
		GoVersion:  runtime.Version(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		UptimeSec:  time.Since(processStart).Seconds(),
		RSSBytes:   readRSSBytes(),
	}
}
