package follow

import "dpsadopt/internal/obs"

// Follower metrics. Lag is the one to alert on: committed partitions
// the serving index has not absorbed yet. Skips are permanent (a spool
// that fails its CRC never heals), so a nonzero skip counter means a
// day is being served degraded.
var (
	mPolls = obs.Default().Counter("follow_polls_total",
		"feed poll cycles executed")
	mApplied = obs.Default().Counter("follow_partitions_applied_total",
		"committed partitions folded into the serving index")
	mSkipped = obs.Default().Counter("follow_partitions_skipped_total",
		"committed partitions abandoned as damaged (CRC/load failure)")
	mErrors = obs.Default().Counter("follow_errors_total",
		"poll cycles that failed transiently and will retry")
	mLag = obs.Default().Gauge("follow_lag_partitions",
		"partitions committed upstream but not yet applied")
	mApplySeconds = obs.Default().Histogram("follow_apply_seconds",
		"wall time of one discover+detect+apply+publish cycle", nil)
)
