package analysis

import (
	"math"
	"net/netip"
	"testing"

	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// oneProviderRefs builds a reference table with a single CloudFlare-like
// provider.
func oneProviderRefs(t *testing.T) *core.References {
	t.Helper()
	refs, err := core.NewReferences([]core.ProviderRefs{{
		Name:      "CloudFlare",
		ASNs:      []uint32{13335},
		CNAMESLDs: []string{"cloudflare.net"},
		NSSLDs:    []string{"cloudflare.com"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return refs
}

// syntheticStore builds 10 days of hand-crafted detections:
//
//	a.com — present every day (always-on)
//	b.com — peaks [1,3), [4,5), [6,9) (on-demand, 3 peaks)
//	c.com — single interval [3,6)
//	bg.com — measured daily, never protected
func syntheticStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	cfAddr := netip.MustParseAddr("104.16.0.1")
	bgAddr := netip.MustParseAddr("100.64.0.1")
	present := func(day simtime.Day, dom string) bool {
		switch dom {
		case "a.com":
			return true
		case "b.com":
			return (day >= 1 && day < 3) || day == 4 || (day >= 6 && day < 9)
		case "c.com":
			return day >= 3 && day < 6
		}
		return false
	}
	for day := simtime.Day(0); day < 10; day++ {
		w := s.NewWriter("com", day)
		for _, dom := range []string{"a.com", "b.com", "c.com", "bg.com"} {
			if present(day, dom) {
				w.AddAddr(dom, store.KindApexA, cfAddr, []uint32{13335})
				w.AddStr(dom, store.KindNS, "kate.ns.cloudflare.com")
			} else {
				w.AddAddr(dom, store.KindApexA, bgAddr, []uint32{64601})
				w.AddStr(dom, store.KindNS, "ns1.hostco1.net")
			}
		}
		w.Commit()
	}
	return s
}

func syntheticAgg(t *testing.T) *Aggregator {
	t.Helper()
	refs := oneProviderRefs(t)
	s := syntheticStore(t)
	a := NewAggregator(refs, s, []string{"com"})
	if err := a.Run([]string{"com"}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAggregatorCounts(t *testing.T) {
	a := syntheticAgg(t)
	dc := a.Counts("com", 0)
	if dc == nil || dc.Measured != 4 || dc.Any != 1 || dc.PerProvider[0] != 1 {
		t.Fatalf("day 0: %+v", dc)
	}
	dc = a.Counts("com", 4)
	if dc.Any != 3 {
		t.Errorf("day 4 Any = %d, want 3 (a, b, c)", dc.Any)
	}
	// Methods: protected rows carry AS + NS.
	if dc.PerMethod[0][0] != 3 || dc.PerMethod[0][2] != 3 || dc.PerMethod[0][1] != 0 {
		t.Errorf("day 4 methods = %v", dc.PerMethod[0])
	}
	if got := a.SumAny([]string{"com"}, 4); got != 3 {
		t.Errorf("SumAny = %d", got)
	}
	if got := a.SumMeasured([]string{"com"}, 4); got != 4 {
		t.Errorf("SumMeasured = %d", got)
	}
	if got := a.SumMethod([]string{"com"}, 0, 2, 4); got != 3 {
		t.Errorf("SumMethod NS = %d", got)
	}
	if days := a.Days("com"); len(days) != 10 || days[0] != 0 || days[9] != 9 {
		t.Errorf("Days = %v", days)
	}
}

func TestAddDayOrderEnforced(t *testing.T) {
	refs := oneProviderRefs(t)
	s := syntheticStore(t)
	a := NewAggregator(refs, s, nil)
	if err := a.AddDay("com", 5); err != nil {
		t.Fatal(err)
	}
	if err := a.AddDay("com", 4); err == nil {
		t.Error("out-of-order day accepted")
	}
}

func TestClassify(t *testing.T) {
	a := syntheticAgg(t)
	window := simtime.Range{Start: 0, End: 10}
	cases := []struct {
		dom  string
		want UseClass
	}{
		{"a.com", ClassAlwaysOn},
		{"b.com", ClassOnDemand},
		{"c.com", ClassSingle},
		{"bg.com", ClassNotSeen},
	}
	for _, c := range cases {
		if got := a.Classify(0, c.dom, window); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.dom, got, c.want)
		}
	}
	if ivs := a.Intervals(0, "b.com"); len(ivs) != 3 {
		t.Errorf("b.com intervals = %v", ivs)
	}
}

func TestFlux(t *testing.T) {
	a := syntheticAgg(t)
	window := simtime.Range{Start: 0, End: 10}
	bins := a.Flux(0, window, 5)
	if len(bins) != 2 {
		t.Fatalf("bins = %v", bins)
	}
	// a.com: first day 0 (boundary, no influx), last day 9 (boundary, no
	// outflux). b.com: first day 1 → bin 0 influx; last day 8 → bin 1
	// outflux. c.com: first day 3 → bin 0; last day 5 → bin 1.
	if bins[0].In != 2 || bins[0].Out != 0 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].In != 0 || bins[1].Out != 2 {
		t.Errorf("bin1 = %+v", bins[1])
	}
	if bins[0].Delta() != 2 || bins[1].Delta() != -2 {
		t.Error("deltas wrong")
	}
}

func TestOnDemandPeaks(t *testing.T) {
	a := syntheticAgg(t)
	st := a.OnDemandPeaks(0, 3)
	if st.Domains != 1 {
		t.Fatalf("on-demand domains = %d", st.Domains)
	}
	// b.com peaks: lengths 2, 1, 3 → sorted [1 2 3].
	if len(st.Durations) != 3 || st.Durations[0] != 1 || st.Durations[2] != 3 {
		t.Errorf("durations = %v", st.Durations)
	}
	if st.P(0.8) != 3 {
		t.Errorf("P80 = %d", st.P(0.8))
	}
	days, frac := st.CDF()
	if len(days) != 3 || frac[2] != 1.0 {
		t.Errorf("CDF = %v %v", days, frac)
	}
	if math.Abs(frac[0]-1.0/3) > 1e-9 {
		t.Errorf("CDF first = %v", frac[0])
	}
}

func TestDistribution(t *testing.T) {
	a := syntheticAgg(t)
	ns, dps := a.Distribution([]string{"com"})
	if ns["com"] != 1.0 || dps["com"] != 1.0 {
		t.Errorf("distribution = %v %v", ns, dps)
	}
}

func TestMedianWindow(t *testing.T) {
	vals := []float64{1, 1, 100, 1, 1}
	out := MedianWindow(vals, 3)
	if out[2] != 1 {
		t.Errorf("spike survived: %v", out)
	}
	// Even window widened; constant series unchanged.
	out = MedianWindow([]float64{5, 5, 5, 5}, 4)
	for _, v := range out {
		if v != 5 {
			t.Errorf("constant series changed: %v", out)
		}
	}
	if got := MedianWindow(nil, 3); len(got) != 0 {
		t.Error("nil input")
	}
}

func TestDespikeRemovesPlateau(t *testing.T) {
	// 200-day series at level 100 with a 30-day plateau at 300.
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 100
		if i >= 80 && i < 110 {
			vals[i] = 300
		}
	}
	out := Despike(vals, 151, 0.05)
	for i, v := range out {
		if v != 100 {
			t.Fatalf("plateau survived at %d: %v", i, v)
		}
	}
	// Genuine gradual growth survives despiking.
	for i := range vals {
		vals[i] = 100 + float64(i)*0.2
	}
	out = Smooth(vals)
	if out[len(out)-1] < out[0]*1.2 {
		t.Errorf("growth flattened: %v -> %v", out[0], out[len(out)-1])
	}
}

func TestRelative(t *testing.T) {
	out := Relative([]float64{50, 55, 60})
	if out[0] != 1 || math.Abs(out[2]-1.2) > 1e-9 {
		t.Errorf("Relative = %v", out)
	}
	if out := Relative([]float64{0, 5}); out[1] != 0 {
		t.Error("zero-start series should zero out")
	}
}

func TestGrowthPipeline(t *testing.T) {
	// Paper-shaped synthetic: over 550 days the DPS population grows
	// 100 → 124 (the 1.24× of Fig 5) with a 3-day spike and a 40-day
	// plateau injected; the namespace grows 1000 → 1090 (1.09×). The
	// anomalies must be cleaned away, the trends preserved.
	refs := oneProviderRefs(t)
	s := store.New()
	cfAddr := netip.MustParseAddr("104.16.0.1")
	bgAddr := netip.MustParseAddr("100.64.0.9")
	days := 550
	for day := 0; day < days; day++ {
		w := s.NewWriter("com", simtime.Day(day))
		dps := 100 + day*24/(days-1)
		if day >= 150 && day < 153 {
			dps += 2000 // Wix-style spike
		}
		if day >= 300 && day < 340 {
			dps += 800 // multi-week plateau
		}
		total := 1000 + day*90/(days-1)
		for i := 0; i < total; i++ {
			name := domName(i)
			if i < dps {
				w.AddAddr(name, store.KindApexA, cfAddr, []uint32{13335})
			} else {
				w.AddAddr(name, store.KindApexA, bgAddr, []uint32{64601})
			}
		}
		w.Commit()
	}
	a := NewAggregator(refs, s, nil)
	if err := a.Run([]string{"com"}); err != nil {
		t.Fatal(err)
	}
	g := a.Growth([]string{"com"})
	if len(g.Adoption) != days {
		t.Fatalf("series length = %d", len(g.Adoption))
	}
	ag := g.AdoptionGrowth()
	if ag < 1.20 || ag > 1.28 {
		t.Errorf("adoption growth = %.3f, want ≈1.24 (anomalies cleaned)", ag)
	}
	eg := g.ExpansionGrowth()
	if eg < 1.06 || eg > 1.12 {
		t.Errorf("expansion growth = %.3f, want ≈1.09", eg)
	}
	// The spike and plateau must not leak into the smoothed series.
	for i, v := range g.Adoption {
		if v > 1.5 {
			t.Fatalf("anomaly leaked at day %d: %.2f", i, v)
		}
	}
	pg := a.ProviderGrowth([]string{"com"}, 0)
	if got := pg.AdoptionGrowth(); got < 1.20 || got > 1.28 {
		t.Errorf("provider growth = %.3f", got)
	}
}

func domName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string([]byte{letters[i%26], letters[(i/26)%26], letters[(i/676)%26]}) + ".com"
}

func TestSwingsAndAttribution(t *testing.T) {
	a := syntheticAgg(t)
	swings := a.LargestSwings([]string{"com"}, 0, 3)
	if len(swings) == 0 {
		t.Fatal("no swings found")
	}
	// Biggest swing: day 1 (+1: b.com) or day 3/5/6... all ±1 here; just
	// check attribution mechanics on day 1.
	att := a.Attribute([]string{"com"}, 0, 1)
	if att.Joined != 1 || att.Left != 0 {
		t.Fatalf("attribution = %+v", att)
	}
	if len(att.Shared) == 0 || att.Shared[0].SLD != "cloudflare.com" || att.Shared[0].Fraction != 1.0 {
		t.Errorf("shared = %+v", att.Shared)
	}
	// Day 5→6: c.com leaves (last day 5), b.com joins (day 6).
	att = a.Attribute([]string{"com"}, 0, 6)
	if att.Joined != 1 || att.Left != 1 {
		t.Errorf("day 6 attribution = %+v", att)
	}
	// First-day attribution is empty by construction.
	if att := a.Attribute([]string{"com"}, 0, 0); att.Joined != 0 || att.Left != 0 {
		t.Error("day 0 attribution should be empty")
	}
}
