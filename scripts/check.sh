#!/bin/sh
# Tier-1 verification: vet, build, and race-enabled tests for the whole
# module. Mirrors `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "check: OK"
