// Package follow is the live ingestion tier: it turns a batch-built
// dpsapi into a continuously updated one. A Follower tails a feed of
// committed (source, day) partitions — either a dpscoord coordination
// directory (the journal doubles as a change feed, read via
// coord.JournalReader) or a growing .dpsa dataset file (discovered via
// the v3+ partition directory) — verifies each partition's CRCs, runs
// ID-native detection on just the new partitions, and folds the results
// into the serving index through api's copy-on-write delta path. The
// publish is one atomic pointer swap plus a precise cache sweep, so the
// service keeps answering at full rate while a freshly measured day
// becomes queryable within one poll interval of its commit.
//
// The follower is strictly read-only toward its feed: it never
// truncates the coordinator's journal and never moves its spools. A
// partition that fails verification is logged, counted, and skipped
// permanently (commits are terminal; a torn spool at rest will not
// heal) — the day serves degraded rather than wedging the feed, exactly
// like coord.Assemble's quarantine policy, and the operator sees it in
// follow_partitions_skipped_total and /v1/stats freshness.
//
// The one file a follower does write is its own restart cursor
// (Config.CursorPath): a small JSON snapshot of the journal offset and
// the applied/pending/skipped partition sets, saved after every apply,
// so a restarted follower resumes the feed where it left off instead of
// re-reading (and re-detecting) the whole history. The cursor lives
// beside the feed but is never part of it — the coordinator ignores it.
package follow

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dpsadopt/internal/api"
	"dpsadopt/internal/coord"
	"dpsadopt/internal/core"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/store"
)

// Sink is where applied deltas land. *api.Server satisfies it: Index
// resolves the served snapshot, Publish swaps in its successor and
// invalidates precisely the keys the delta touched.
type Sink interface {
	Index() *api.Index
	Publish(*api.Index, *api.Delta)
}

// Mode says how a target is tailed.
type Mode string

const (
	// ModeCoord tails a dpscoord coordination directory: the journal is
	// the feed, spool files are the payload.
	ModeCoord Mode = "coord"
	// ModeDataset tails a .dpsa file that grows by atomic re-saves: the
	// partition directory is diffed against the applied set.
	ModeDataset Mode = "dataset"
)

// Config parameterises a follower.
type Config struct {
	// Target is the feed: a coordination directory or a .dpsa path. A
	// not-yet-existing target is legal — the follower waits for it.
	Target string
	// Refs is the provider ground truth detection runs against; it must
	// be the same References the sink's index was built with.
	Refs *core.References
	// Sink receives published index generations. Required.
	Sink Sink
	// Poll is the feed polling interval (default 500ms).
	Poll time.Duration
	// Workers bounds the catch-up detect concurrency (default 4).
	Workers int
	// MaxBatch bounds how many partitions one apply folds in: catch-up
	// publishes every MaxBatch partitions instead of holding the first
	// results hostage to the last (default 64).
	MaxBatch int
	// CursorPath is where the restart cursor is persisted. "" disables
	// the cursor (every restart replays the feed); CursorAuto derives a
	// path from the target (coord: <dir>/follower.cursor.json, dataset:
	// <file>.cursor.json); anything else is used verbatim.
	CursorPath string
}

// CursorAuto asks New to derive the cursor path from the target.
const CursorAuto = "auto"

// Status is a point-in-time snapshot of the follower, safe to read
// while Run is live.
type Status struct {
	Mode      Mode      `json:"mode"`
	Target    string    `json:"target"`
	Epoch     uint64    `json:"epoch"`
	Applied   int       `json:"partitions_applied"`
	Skipped   int       `json:"partitions_skipped"`
	Lag       int       `json:"lag_partitions"`
	LastApply time.Time `json:"last_apply"`
	LastErr   string    `json:"last_err,omitempty"`
}

// Follower tails one feed and drives one sink. Run (or Poll) must be
// called from a single goroutine; Status and Freshness are safe from
// any.
type Follower struct {
	cfg    Config
	mode   Mode
	reader *coord.JournalReader // coord mode

	// Feed bookkeeping, owned by the polling goroutine.
	pending map[store.PartitionKey]string // discovered, not yet applied (value: spool path, "" in dataset mode)
	applied map[store.PartitionKey]bool
	skipped map[store.PartitionKey]bool
	// appliedSpool remembers the spool each coord-mode partition was
	// folded from, so the cursor can re-reach it after a restart whose
	// boot index doesn't contain it.
	appliedSpool map[store.PartitionKey]string
	// Restart cursor: resolved path ("" when disabled) and whether the
	// one-time restore ran (lazily, at the first Poll, after Seed).
	cursorPath string
	restored   bool
	// Dataset-mode change detection: the directory is re-read only when
	// the file's (size, mtime) moved.
	lastSize int64
	lastMod  time.Time

	mu sync.Mutex
	st Status
}

// New builds a follower. The mode is inferred from the target: an
// existing directory (or a path without a .dpsa suffix) is a
// coordination directory, anything else a dataset file.
func New(cfg Config) (*Follower, error) {
	if cfg.Target == "" {
		return nil, errors.New("follow: Config.Target required")
	}
	if cfg.Sink == nil {
		return nil, errors.New("follow: Config.Sink required")
	}
	if cfg.Refs == nil {
		return nil, errors.New("follow: Config.Refs required")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	mode := ModeDataset
	if fi, err := os.Stat(cfg.Target); err == nil {
		if fi.IsDir() {
			mode = ModeCoord
		}
	} else if !strings.HasSuffix(cfg.Target, ".dpsa") {
		mode = ModeCoord
	}
	f := &Follower{
		cfg:          cfg,
		mode:         mode,
		pending:      make(map[store.PartitionKey]string),
		applied:      make(map[store.PartitionKey]bool),
		skipped:      make(map[store.PartitionKey]bool),
		appliedSpool: make(map[store.PartitionKey]string),
		st:           Status{Mode: mode, Target: cfg.Target},
	}
	switch cfg.CursorPath {
	case "":
	case CursorAuto:
		if mode == ModeCoord {
			f.cursorPath = filepath.Join(cfg.Target, "follower.cursor.json")
		} else {
			f.cursorPath = cfg.Target + ".cursor.json"
		}
	default:
		f.cursorPath = cfg.CursorPath
	}
	if mode == ModeCoord {
		f.reader = coord.NewJournalReader(cfg.Target)
	}
	return f, nil
}

// Seed marks partitions as already applied — the ones resident in the
// sink's boot index — so the first poll does not re-fold them.
func (f *Follower) Seed(keys []store.PartitionKey) {
	for _, k := range keys {
		f.applied[k] = true
	}
}

// Mode reports how the target is tailed.
func (f *Follower) Mode() Mode { return f.mode }

// Run polls the feed until ctx is cancelled, draining all discovered
// partitions batch by batch each tick. Transient errors are logged and
// retried on the next tick; Run only returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	log := obs.Logger().With("component", "follow", "target", f.cfg.Target, "mode", string(f.mode))
	log.Info("follower started", "poll", f.cfg.Poll.String())
	tick := time.NewTicker(f.cfg.Poll)
	defer tick.Stop()
	for {
		for {
			n, err := f.Poll(ctx)
			if err != nil {
				mErrors.Inc()
				log.Warn("poll failed; will retry", "err", err)
				f.setErr(err)
				break
			}
			if n > 0 {
				st := f.Status()
				log.Info("applied partitions", "applied", n, "epoch", st.Epoch, "lag", st.Lag)
			}
			if n < f.cfg.MaxBatch {
				break // feed drained (or short batch): back to the ticker
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Poll runs one discover→verify→detect→apply→publish cycle of at most
// MaxBatch partitions and returns how many were applied. It is the
// synchronous unit Run loops over; tests drive it directly.
func (f *Follower) Poll(ctx context.Context) (int, error) {
	mPolls.Inc()
	if !f.restored {
		// One-time cursor restore, lazy so it runs after the boot Seed —
		// the seed tells the restore which applied partitions are already
		// in the serving index and which must be re-folded.
		f.restored = true
		f.restoreCursor()
	}
	var err error
	if f.mode == ModeCoord {
		err = f.discoverCoord()
	} else {
		err = f.discoverDataset()
	}
	if err != nil {
		return 0, err
	}
	if len(f.pending) == 0 {
		f.setLag(0)
		return 0, nil
	}

	// Oldest days first: catch-up replays history in order, so interval
	// packing mostly extends instead of backfilling.
	batch := make([]store.PartitionKey, 0, len(f.pending))
	for k := range f.pending {
		batch = append(batch, k)
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].Day != batch[j].Day {
			return batch[i].Day < batch[j].Day
		}
		return batch[i].Source < batch[j].Source
	})
	if len(batch) > f.cfg.MaxBatch {
		batch = batch[:f.cfg.MaxBatch]
	}

	start := time.Now()
	var ups []api.PartitionUpdate
	if f.mode == ModeCoord {
		ups = f.loadCoordBatch(ctx, batch)
	} else {
		ups, err = f.loadDatasetBatch(ctx, batch)
		if err != nil {
			return 0, err
		}
	}
	for _, u := range ups {
		k := store.PartitionKey{Source: u.Source, Day: u.Day}
		if f.mode == ModeCoord {
			f.appliedSpool[k] = f.pending[k]
		}
		delete(f.pending, k)
		f.applied[k] = true
	}
	if len(ups) == 0 {
		// Every partition in the batch was damaged; lag excludes them now.
		f.setLag(len(f.pending))
		f.saveCursor()
		return 0, nil
	}

	next, delta := f.cfg.Sink.Index().Apply(ups)
	f.cfg.Sink.Publish(next, delta)

	mApplied.Add(int64(len(ups)))
	mApplySeconds.Observe(time.Since(start).Seconds())
	f.mu.Lock()
	f.st.Epoch = next.Epoch()
	f.st.Applied += len(ups)
	f.st.Skipped = len(f.skipped)
	f.st.Lag = len(f.pending)
	f.st.LastApply = time.Now()
	f.st.LastErr = ""
	f.mu.Unlock()
	mLag.Set(float64(len(f.pending)))
	f.saveCursor()
	return len(ups), nil
}

// discoverCoord folds newly journaled commits into the pending set.
func (f *Follower) discoverCoord() error {
	recs, err := f.reader.Next()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.Type != coord.RecCommit {
			continue
		}
		k := store.PartitionKey{Source: rec.Source, Day: rec.Day}
		if f.applied[k] || f.skipped[k] {
			continue
		}
		f.pending[k] = f.spoolPath(rec)
	}
	return nil
}

// spoolPath resolves a commit record's spool file. The journal records
// the path the coordinator used (possibly relative to its own working
// directory), so the layout-derived path under the followed directory
// wins whenever it exists.
func (f *Follower) spoolPath(rec coord.Record) string {
	derived := filepath.Join(f.cfg.Target, "spool", fmt.Sprintf("%s.%s.dpsa", rec.Source, rec.Day))
	if _, err := os.Stat(derived); err == nil {
		return derived
	}
	return rec.Spool
}

// discoverDataset diffs the dataset's partition directory against the
// applied set when the file changed. Saves are atomic whole-file
// renames, so a directory read never sees a half-written dataset.
func (f *Follower) discoverDataset() error {
	fi, err := os.Stat(f.cfg.Target)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // not born yet: keep waiting
		}
		return err
	}
	if fi.Size() == f.lastSize && fi.ModTime().Equal(f.lastMod) {
		return nil
	}
	dir, err := store.Directory(f.cfg.Target)
	if err != nil {
		return fmt.Errorf("follow: dataset directory: %w", err)
	}
	for _, ent := range dir {
		k := ent.Key()
		if !f.applied[k] && !f.skipped[k] {
			f.pending[k] = ""
		}
	}
	f.lastSize, f.lastMod = fi.Size(), fi.ModTime()
	return nil
}

// loadCoordBatch detects spool partitions with bounded concurrency via
// the streaming read path: store.Open reads only the spool's footer and
// directory, and core.DetectPartition preads, CRC-checks, and decodes
// exactly the committed partition in one pass — half the I/O of the old
// Verify-then-Load sequence, and no resident *store.Store per spool.
// Damaged spools are skipped permanently (and counted); the survivors
// come back as updates.
func (f *Follower) loadCoordBatch(ctx context.Context, batch []store.PartitionKey) []api.PartitionUpdate {
	log := obs.Logger().With("component", "follow")
	type result struct {
		up   api.PartitionUpdate
		ok   bool
		fail string
	}
	results := make([]result, len(batch))
	workers := f.cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ctx.Err() != nil {
					continue
				}
				k := batch[i]
				spool := f.pending[k]
				r, err := store.Open(spool)
				if err != nil {
					results[i].fail = fmt.Sprintf("open %s: %v", spool, err)
					continue
				}
				det, err := core.DetectPartition(r, k.Source, k.Day, f.cfg.Refs)
				r.Close()
				if err != nil {
					results[i].fail = fmt.Sprintf("detect %s: %v", spool, err)
					continue
				}
				results[i] = result{
					up: api.PartitionUpdate{Source: k.Source, Day: k.Day, Det: det},
					ok: true,
				}
			}
		}()
	}
	for i := range batch {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	ups := make([]api.PartitionUpdate, 0, len(batch))
	for i, r := range results {
		switch {
		case r.ok:
			ups = append(ups, r.up)
		case r.fail != "":
			f.skip(batch[i], r.fail, log)
		default:
			// Cancelled before processing: leave pending for next poll.
		}
	}
	return ups
}

// loadDatasetBatch loads a batch of partitions from the dataset file in
// one pass and detects them through the shared DetectRange pool. A
// salvaged load (PartialLoadError) skips the quarantined partitions and
// applies the survivors; a wholesale failure retries next poll.
func (f *Follower) loadDatasetBatch(ctx context.Context, batch []store.PartitionKey) ([]api.PartitionUpdate, error) {
	log := obs.Logger().With("component", "follow")
	st, err := store.LoadPartitions(f.cfg.Target, batch)
	var ple *store.PartialLoadError
	if err != nil {
		if !errors.As(err, &ple) {
			// The file may have been atomically replaced mid-discovery;
			// force a directory rescan and retry next poll.
			f.lastSize, f.lastMod = 0, time.Time{}
			return nil, err
		}
		for _, q := range ple.Quarantined {
			f.skip(store.PartitionKey{Source: q.Source, Day: q.Day},
				fmt.Sprintf("quarantined: %s", q.Err), log)
		}
	}
	var live []core.Partition
	var keys []store.PartitionKey
	for _, k := range batch {
		if f.skipped[k] {
			continue
		}
		live = append(live, core.Partition{Source: k.Source, Day: k.Day})
		keys = append(keys, k)
	}
	dets := core.DetectRange(ctx, st, live, f.cfg.Refs, f.cfg.Workers)
	ups := make([]api.PartitionUpdate, 0, len(live))
	for i, k := range keys {
		if dets[i] == nil {
			continue // cancelled
		}
		ups = append(ups, api.PartitionUpdate{Source: k.Source, Day: k.Day, Det: dets[i]})
	}
	return ups, nil
}

// skip permanently abandons a damaged partition.
func (f *Follower) skip(k store.PartitionKey, cause string, log interface {
	Warn(string, ...any)
}) {
	f.skipped[k] = true
	delete(f.pending, k)
	mSkipped.Inc()
	log.Warn("skipping damaged partition", "partition", k.String(), "cause", cause)
}

// Status returns a snapshot of the follower's progress.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Freshness adapts Status to the /v1/stats freshness block; install it
// with api.Server.SetFreshnessFunc.
func (f *Follower) Freshness() *api.Freshness {
	st := f.Status()
	fr := &api.Freshness{
		Following:  st.Target,
		Mode:       string(st.Mode),
		Epoch:      st.Epoch,
		Partitions: st.Applied,
		Lag:        st.Lag,
		Skipped:    st.Skipped,
	}
	if !st.LastApply.IsZero() {
		fr.LastApply = st.LastApply.UTC().Format(time.RFC3339)
	}
	return fr
}

func (f *Follower) setLag(n int) {
	mLag.Set(float64(n))
	f.mu.Lock()
	f.st.Lag = n
	f.st.Skipped = len(f.skipped)
	f.mu.Unlock()
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.st.LastErr = err.Error()
	f.mu.Unlock()
}

// Keys lists a store's (source, day) partitions — the seed for a
// follower booted from an existing dataset.
func Keys(s *store.Store) []store.PartitionKey {
	var out []store.PartitionKey
	for _, src := range s.Sources() {
		for _, d := range s.Days(src) {
			out = append(out, store.PartitionKey{Source: src, Day: d})
		}
	}
	return out
}
