package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// NewMux builds the exposition handler for a registry:
//
//	/metrics          Prometheus text format
//	/debug/vars       expvar JSON (runtime memstats, cmdline, and the
//	                  registry snapshot under "obs")
//	/debug/pprof/     the full net/http/pprof suite (profile, heap,
//	                  goroutine, trace, ...)
//	/debug/contention JSON summary of the top mutex/block profile sites
//	                  (empty until profiling is enabled with -prof-mutex
//	                  / -prof-block, see SetContentionProfiling)
//
// Handlers registered with Handle (e.g. the tracer's /debug/traces) are
// mounted as well.
func NewMux(reg *Registry) *http.ServeMux {
	publishExpvar(reg)
	mux := http.NewServeMux()
	extraMu.RLock()
	for pattern, h := range extraHandlers {
		mux.Handle(pattern, h)
	}
	extraMu.RUnlock()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/contention", ContentionHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// extraHandlers holds debug handlers contributed by other subsystems
// (the tracer's /debug/traces); NewMux mounts them alongside the
// built-in endpoints. Registering the same pattern again replaces the
// handler, so tests and restarts are safe.
var (
	extraMu       sync.RWMutex
	extraHandlers = map[string]http.Handler{}
)

// Handle registers an extra handler to be mounted on every mux built by
// NewMux. It must be called before Serve/NewMux to take effect on that
// mux.
func Handle(pattern string, h http.Handler) {
	extraMu.Lock()
	extraHandlers[pattern] = h
	extraMu.Unlock()
}

// expvarOnce guards the process-global expvar namespace: expvar.Publish
// panics on duplicate names, and tests build several muxes.
var expvarOnce sync.Once

func publishExpvar(reg *Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return reg.Snapshot() }))
	})
}

// Server is a running exposition endpoint.
type Server struct {
	// Addr is the bound address (useful when the caller asked for :0).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Serve starts the exposition server on addr ("host:port"; an empty host
// binds all interfaces) and returns immediately; the HTTP loop runs in
// its own goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Close shuts the server down immediately, dropping in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains the server gracefully: the listener stops accepting,
// in-flight scrapes complete, and the call returns when they have (or
// when ctx expires, whichever is first). Binaries should prefer this
// over Close on their signal path so a /metrics scrape racing the
// shutdown still gets its final counters.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
