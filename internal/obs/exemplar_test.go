package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestObserveExemplarKeepsSlowest(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.ObserveExemplar(0.05, "aaaa")
	h.ObserveExemplar(0.08, "bbbb") // slower, same bucket: replaces
	h.ObserveExemplar(0.02, "cccc") // faster: kept out
	h.ObserveExemplar(0.5, "dddd")  // second bucket
	h.Observe(2.5)                  // overflow bucket, no exemplar

	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("exemplar slots = %d, want 3", len(ex))
	}
	if ex[0] == nil || ex[0].TraceID != "bbbb" || ex[0].Value != 0.08 {
		t.Errorf("bucket 0 exemplar = %+v, want bbbb@0.08", ex[0])
	}
	if ex[1] == nil || ex[1].TraceID != "dddd" {
		t.Errorf("bucket 1 exemplar = %+v, want dddd", ex[1])
	}
	if ex[2] != nil {
		t.Errorf("overflow bucket exemplar = %+v, want nil", ex[2])
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5 (exemplar observations count)", h.Count())
	}
}

func TestObserveExemplarEmptyTraceID(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveExemplar(0.5, "")
	if ex := h.Exemplars(); ex[0] != nil {
		t.Errorf("empty trace id stored an exemplar: %+v", ex[0])
	}
}

func TestObserveExemplarConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.ObserveExemplar(float64(i%100)/100, "t")
			}
		}(g)
	}
	wg.Wait()
	if ex := h.Exemplars()[0]; ex == nil || ex.Value != 0.99 {
		t.Errorf("slowest exemplar = %+v, want 0.99", ex)
	}
}

func TestWritePrometheusExemplarSuffix(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("demo_seconds", "demo", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "00000000deadbeef")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# {trace_id="00000000deadbeef"} 0.05`) {
		t.Errorf("exposition lacks exemplar suffix:\n%s", out)
	}
	// Buckets without exemplars stay plain.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="1"`) && strings.Contains(line, "trace_id") {
			t.Errorf("empty bucket got an exemplar: %s", line)
		}
	}
}
