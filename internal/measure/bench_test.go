package measure

import (
	"context"
	"testing"

	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

// Ablation: measurement fidelity — the in-process direct derivation
// against full wire resolution over the in-memory network, on the same
// world and day (DESIGN.md §5). The two produce identical rows
// (TestModesEquivalent); the benchmark quantifies what the wire path
// costs.

var benchWorldCache *worldsim.World

func benchWorld(b *testing.B) *worldsim.World {
	b.Helper()
	if benchWorldCache == nil {
		w, err := worldsim.New(worldsim.DefaultConfig(400_000))
		if err != nil {
			b.Fatal(err)
		}
		benchWorldCache = w
	}
	return benchWorldCache
}

func BenchmarkAblationTransportDirect(b *testing.B) {
	w := benchWorld(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := store.New()
		p := New(w, s, Config{Mode: ModeDirect, Workers: 4})
		if err := p.RunDay(context.Background(), 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransportWire(b *testing.B) {
	w := benchWorld(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := store.New()
		p := New(w, s, Config{Mode: ModeWire, Workers: 8, Timeout: 500, Retries: 3})
		if err := p.RunDay(context.Background(), 100); err != nil {
			b.Fatal(err)
		}
	}
}
