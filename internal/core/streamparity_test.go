package core

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"dpsadopt/internal/measure"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

// TestDetectRangeStreamingParity is the out-of-core acceptance gate:
// DetectRange over a streaming store.Reader must produce byte-identical
// detections to DetectRange over a fully loaded store, across randomized
// worlds (different seeds and scales) and under -race (the streaming
// pool shares one Reader between workers).
func TestDetectRangeStreamingParity(t *testing.T) {
	days := []simtime.Day{quietDay, simtime.FromDate(2015, 3, 5)}
	refs := MustGroundTruth()
	for _, tc := range []struct {
		seed  int64
		scale int
	}{
		{seed: 2016, scale: 1500},
		{seed: 777, scale: 900},
		{seed: 424242, scale: 2200},
	} {
		cfg := worldsim.DefaultConfig(tc.scale)
		cfg.Seed = tc.seed
		w, err := worldsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := store.New()
		p := measure.New(w, s, measure.Config{Mode: measure.ModeDirect, Workers: 4})
		for _, d := range days {
			if err := p.RunDay(context.Background(), d); err != nil {
				t.Fatal(err)
			}
		}
		path := filepath.Join(t.TempDir(), "world.dpsa")
		if err := s.Save(path); err != nil {
			t.Fatal(err)
		}

		parts := Partitions(s)
		wantDets, wantStats := DetectRangeStats(context.Background(), s, parts, refs, 3)

		r, err := store.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := ReaderPartitions(r); !reflect.DeepEqual(got, parts) {
			t.Fatalf("seed %d: ReaderPartitions = %v, want %v", tc.seed, got, parts)
		}
		gotDets, gotStats, failed := DetectRangeSource(context.Background(), r, parts, refs, 3)
		r.Close()
		if len(failed) != 0 {
			t.Fatalf("seed %d: streaming detect failed partitions: %v", tc.seed, failed)
		}
		if gotStats.Partitions != wantStats.Partitions || gotStats.Rows != wantStats.Rows {
			t.Fatalf("seed %d: stats diverge: stream %d parts/%d rows, full %d/%d",
				tc.seed, gotStats.Partitions, gotStats.Rows, wantStats.Partitions, wantStats.Rows)
		}
		if len(gotDets) != len(wantDets) {
			t.Fatalf("seed %d: %d streaming results, want %d", tc.seed, len(gotDets), len(wantDets))
		}
		for i := range wantDets {
			a, b := wantDets[i], gotDets[i]
			if b == nil {
				t.Fatalf("seed %d: nil streaming detection for %v", tc.seed, parts[i])
			}
			// The dict pointers legitimately differ (one per decode path);
			// everything semantic must match exactly.
			if a.Source != b.Source || a.Day != b.Day ||
				a.DomainsMeasured != b.DomainsMeasured || a.Rows != b.Rows ||
				a.anyCount != b.anyCount ||
				!reflect.DeepEqual(a.packed, b.packed) || !reflect.DeepEqual(a.off, b.off) {
				t.Fatalf("seed %d: detections diverge for %s/%s", tc.seed, a.Source, a.Day)
			}
			for pi := range refs.Providers {
				if a.Count(pi) != b.Count(pi) {
					t.Fatalf("seed %d: provider %d count %d != %d", tc.seed, pi, a.Count(pi), b.Count(pi))
				}
			}
			if a.CountAny() != b.CountAny() {
				t.Fatalf("seed %d: CountAny %d != %d", tc.seed, a.CountAny(), b.CountAny())
			}
		}
	}
}
