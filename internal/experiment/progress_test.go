package experiment

import (
	"context"
	"testing"

	"dpsadopt/internal/obs"
)

// TestOnDayProgress verifies the per-day progress callback: it fires
// exactly once per measured day, in order, and its numbers agree with
// the experiment_* metrics on the default registry.
func TestOnDayProgress(t *testing.T) {
	const days = 5
	var events []DayProgress
	r, err := New(Config{Scale: 20000, Workers: 4, Days: days,
		OnDayProgress: func(p DayProgress) { events = append(events, p) }})
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Default().Snapshot()
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := obs.Default().Snapshot()

	if len(events) != days {
		t.Fatalf("callback fired %d times, want %d", len(events), days)
	}
	var rows int64
	for i, e := range events {
		if e.Done != i+1 {
			t.Errorf("event %d Done = %d, want %d (monotone, once per day)", i, e.Done, i+1)
		}
		if e.Total != days {
			t.Errorf("event %d Total = %d, want %d", i, e.Total, days)
		}
		if i > 0 && e.Day != events[i-1].Day+1 {
			t.Errorf("event %d Day = %v, want %v", i, e.Day, events[i-1].Day+1)
		}
		if e.Rows <= 0 {
			t.Errorf("event %d Rows = %d, want > 0", i, e.Rows)
		}
		rows += e.Rows
	}

	// The same per-day numbers are exported as experiment_* metrics.
	if got := after.Counter("experiment_rows_total") - before.Counter("experiment_rows_total"); got != rows {
		t.Errorf("experiment_rows_total grew by %d, callbacks reported %d", got, rows)
	}
	if got := after.Gauges["experiment_days_completed"]; got != float64(days) {
		t.Errorf("experiment_days_completed = %v, want %d", got, days)
	}
	if got := after.Gauges["experiment_detected_domains"]; got != float64(events[days-1].Detected) {
		t.Errorf("experiment_detected_domains = %v, last callback saw %d", got, events[days-1].Detected)
	}
	if got := after.Gauges["experiment_days_total"]; got != float64(days) {
		t.Errorf("experiment_days_total = %v, want %d", got, days)
	}
}

// TestRunCancelled verifies a cancelled context stops a run before any
// day is measured.
func TestRunCancelled(t *testing.T) {
	r, err := New(Config{Scale: 20000, Workers: 2, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fired := 0
	r.Cfg.OnDayProgress = func(DayProgress) { fired++ }
	if err := r.Run(ctx); err == nil {
		t.Fatal("Run on cancelled ctx returned nil")
	}
	if fired != 0 {
		t.Errorf("progress fired %d times on a cancelled run", fired)
	}
}
