package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSlowLogSize is the per-route capacity of the slow-query log.
const DefaultSlowLogSize = 32

// SlowQuery is one retained request in the slow-query log: enough
// context to answer "what was slow and why" without replaying traffic —
// the request detail, where the latency went past admission and cache,
// and the trace ID when the request was sampled.
type SlowQuery struct {
	Route     string    `json:"route"`
	Detail    string    `json:"detail"`
	Seconds   float64   `json:"seconds"`
	Status    int       `json:"status"`
	CacheHit  bool      `json:"cache_hit"`
	Coalesced bool      `json:"coalesced,omitempty"`
	Admission string    `json:"admission"`
	TraceID   string    `json:"trace_id,omitempty"`
	At        time.Time `json:"at"`
}

// SlowLog keeps the N slowest requests per route in bounded memory. Each
// route holds a min-heap on Seconds plus an atomic floor: once the heap
// is full, requests faster than the slowest-retained floor are rejected
// with a single atomic load, so the steady-state hot path does not take
// the heap lock.
type SlowLog struct {
	perRoute int
	mu       sync.RWMutex
	routes   map[string]*slowRouteLog
}

type slowRouteLog struct {
	floorBits atomic.Uint64 // float64 bits; -1 until the heap is full
	mu        sync.Mutex
	entries   []SlowQuery // min-heap on Seconds
}

// NewSlowLog creates a slow log retaining perRoute entries per route
// (<=0 uses DefaultSlowLogSize).
func NewSlowLog(perRoute int) *SlowLog {
	if perRoute <= 0 {
		perRoute = DefaultSlowLogSize
	}
	return &SlowLog{perRoute: perRoute, routes: make(map[string]*slowRouteLog)}
}

// Capacity returns the per-route retention limit.
func (l *SlowLog) Capacity() int { return l.perRoute }

// Record offers one request to the log; it is retained if its route's
// heap has room or it is slower than the current floor.
func (l *SlowLog) Record(q SlowQuery) {
	r := l.route(q.Route)
	if !r.aboveFloor(q.Seconds) {
		return
	}
	r.offer(q, l.perRoute)
}

// aboveFloor reports whether a latency would currently be retained: a
// single atomic load, so hot paths can skip building the SlowQuery (and
// its Detail string) for the common fast request.
func (r *slowRouteLog) aboveFloor(seconds float64) bool {
	return seconds > math.Float64frombits(r.floorBits.Load())
}

func (r *slowRouteLog) offer(q SlowQuery, perRoute int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < perRoute {
		r.entries = append(r.entries, q)
		r.siftUp(len(r.entries) - 1)
		if len(r.entries) == perRoute {
			r.floorBits.Store(math.Float64bits(r.entries[0].Seconds))
		}
		return
	}
	if q.Seconds <= r.entries[0].Seconds {
		return // raced below the floor
	}
	r.entries[0] = q
	r.siftDown(0)
	r.floorBits.Store(math.Float64bits(r.entries[0].Seconds))
}

// Entries returns the retained queries for one route, slowest first.
func (l *SlowLog) Entries(route string) []SlowQuery {
	l.mu.RLock()
	r := l.routes[route]
	l.mu.RUnlock()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]SlowQuery(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// Routes lists routes with retained entries, sorted.
func (l *SlowLog) Routes() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.routes))
	for name := range l.routes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (l *SlowLog) route(name string) *slowRouteLog {
	l.mu.RLock()
	r := l.routes[name]
	l.mu.RUnlock()
	if r != nil {
		return r
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if r = l.routes[name]; r == nil {
		r = &slowRouteLog{entries: make([]SlowQuery, 0, l.perRoute)}
		r.floorBits.Store(math.Float64bits(-1))
		l.routes[name] = r
	}
	return r
}

func (r *slowRouteLog) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.entries[p].Seconds <= r.entries[i].Seconds {
			return
		}
		r.entries[p], r.entries[i] = r.entries[i], r.entries[p]
		i = p
	}
}

func (r *slowRouteLog) siftDown(i int) {
	n := len(r.entries)
	for {
		min, l, rt := i, 2*i+1, 2*i+2
		if l < n && r.entries[l].Seconds < r.entries[min].Seconds {
			min = l
		}
		if rt < n && r.entries[rt].Seconds < r.entries[min].Seconds {
			min = rt
		}
		if min == i {
			return
		}
		r.entries[i], r.entries[min] = r.entries[min], r.entries[i]
		i = min
	}
}

// slowLogResponse is the /debug/slowlog body.
type slowLogResponse struct {
	PerRouteCapacity int                    `json:"per_route_capacity"`
	Routes           map[string][]SlowQuery `json:"routes"`
}

// Handler serves the log as JSON: `?route=` filters to one route, `?n=`
// caps entries per route. Entries are slowest-first.
func (l *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		routes := l.Routes()
		if want := r.URL.Query().Get("route"); want != "" {
			routes = []string{want}
		}
		n := l.perRoute
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		resp := slowLogResponse{PerRouteCapacity: l.perRoute, Routes: make(map[string][]SlowQuery, len(routes))}
		for _, route := range routes {
			entries := l.Entries(route)
			if entries == nil {
				continue
			}
			if len(entries) > n {
				entries = entries[:n]
			}
			resp.Routes[route] = entries
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
