// Package dpsadopt's root benchmarks regenerate every table and figure of
// the paper's evaluation from a cached reproduction run, one benchmark
// per artifact (see DESIGN.md §4 for the experiment index). Ablation
// benchmarks for the design choices called out in DESIGN.md §5 live next
// to their subsystems (internal/pfx2as, internal/store, internal/dnswire,
// internal/analysis, internal/measure).
//
//	go test -bench=. -benchmem
package dpsadopt

import (
	"io"
	"sync"
	"testing"

	"dpsadopt/internal/core"
	"dpsadopt/internal/experiment"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/report"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

// benchRunner is a full-window run at 1:50000 scale, built once. Every
// artifact benchmark regenerates its table or figure from this run.
var (
	benchOnce   sync.Once
	benchShared *experiment.Runner
	benchErr    error
)

func runner(b *testing.B) *experiment.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchShared, benchErr = experiment.New(experiment.Config{Scale: 50_000, Workers: 4})
		if benchErr == nil {
			benchErr = benchShared.Run()
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchShared
}

// quietDay is an anomaly-free day used for discovery benchmarks.
var quietDay = simtime.FromDate(2015, 7, 25)

func BenchmarkTable1DataSet(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Table1()
		if len(rows) == 0 {
			b.Fatal("empty table 1")
		}
		report.Table1(io.Discard, rows)
	}
}

func BenchmarkTable2Discovery(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Table2(quietDay)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Discovered) != 9 {
			b.Fatal("missing providers")
		}
	}
}

func BenchmarkFigure2DailyUse(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Figure2()
		if len(s) != 4 {
			b.Fatal("series missing")
		}
	}
}

func BenchmarkFigure3Breakdown(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := r.Figure3()
		if len(p) != 9 {
			b.Fatal("panels missing")
		}
	}
}

func BenchmarkFigure4Distribution(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := r.Figure4()
		if f.Namespace["com"] == 0 {
			b.Fatal("empty distribution")
		}
	}
}

func BenchmarkFigure5Growth(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := r.Figure5()
		if g.AdoptionGrowth() == 0 {
			b.Fatal("empty growth")
		}
	}
}

func BenchmarkFigure6NLAlexa(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := r.Figure6()
		if len(f.NL.Days) == 0 && len(f.Alexa.Days) == 0 {
			b.Fatal("empty fig 6")
		}
	}
}

func BenchmarkFigure7Flux(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := r.Figure7()
		if len(p) != 9 {
			b.Fatal("panels missing")
		}
	}
}

func BenchmarkFigure8PeakCDF(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := r.Figure8()
		if len(p) != 9 {
			b.Fatal("panels missing")
		}
	}
}

func BenchmarkAnomalyAttribution(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := r.Anomalies(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no anomalies")
		}
	}
}

// BenchmarkMeasureDay benchmarks one full measurement day (Stage I–III,
// direct fidelity) on a fresh store.
func BenchmarkMeasureDay(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp := store.New()
		p := measure.New(r.World, tmp, measure.Config{Mode: measure.ModeDirect, Workers: 4})
		if err := p.RunDay(quietDay); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureDayWire benchmarks a wire-fidelity day on a small
// world: every query is a real DNS message through the in-memory network.
func BenchmarkMeasureDayWire(b *testing.B) {
	w, err := worldsim.New(worldsim.DefaultConfig(400_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp := store.New()
		p := measure.New(w, tmp, measure.Config{Mode: measure.ModeWire, Workers: 8, Timeout: 500, Retries: 3})
		if err := p.RunDay(quietDay); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectDay benchmarks the §3.3 detection scan over one stored
// day of .com.
func BenchmarkDetectDay(b *testing.B) {
	r := runner(b)
	tmp, err := r.MaterializeDay(quietDay)
	if err != nil {
		b.Fatal(err)
	}
	refs := core.MustGroundTruth()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := core.DetectDay(tmp, "com", quietDay, refs)
		if det.DomainsMeasured == 0 {
			b.Fatal("nothing measured")
		}
	}
}

// BenchmarkWorldDay benchmarks computing one day of world state (every
// domain's DNS configuration plus the day's RIB).
func BenchmarkWorldDay(b *testing.B) {
	r := runner(b)
	w := r.World
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rib := w.RIBForDay(quietDay)
		if rib.Len() == 0 {
			b.Fatal("empty RIB")
		}
		for _, d := range w.Domains {
			_ = w.StateFor(d, quietDay)
		}
	}
}
