// Package bgp models the parts of inter-domain routing that the paper's
// methodology consumes: autonomous systems with names (the "AS-to-name
// data" used to seed reference discovery, §3.3), prefix announcements and
// withdrawals over time (the diversion mechanism of §2.2), and daily
// Routeviews-style prefix-to-AS snapshots (§3.2).
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the conventional "AS12345" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Registry is the AS-to-name database.
type Registry struct {
	mu    sync.RWMutex
	names map[ASN]string
}

// NewRegistry creates an empty AS registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[ASN]string)}
}

// Register records the holder name for an ASN.
func (r *Registry) Register(asn ASN, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names[asn] = name
}

// Name returns the registered holder name, or "" if unknown.
func (r *Registry) Name(asn ASN) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names[asn]
}

// FindByName returns all ASNs whose holder name contains the query,
// case-insensitively — this is how the discovery procedure seeds a DPS's
// AS set from AS-to-name data.
func (r *Registry) FindByName(query string) []ASN {
	q := strings.ToLower(query)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ASN
	for asn, name := range r.names {
		if strings.Contains(strings.ToLower(name), q) {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of registered ASes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// RIB is a routing information base: the set of currently announced
// prefixes with their origin ASes. Multi-origin (MOAS) prefixes are
// supported: a prefix announced by several origins carries all of them,
// matching the paper's footnote "For multi-origin AS we add all the
// involved AS numbers."
type RIB struct {
	mu sync.RWMutex
	// routes maps masked prefix → set of origins.
	routes map[netip.Prefix]map[ASN]bool
	// maskLens tracks which prefix lengths are present, per family, so
	// lookups only probe existing lengths.
	maskLens4 [33]int
	maskLens6 [129]int
}

// NewRIB creates an empty RIB.
func NewRIB() *RIB {
	return &RIB{routes: make(map[netip.Prefix]map[ASN]bool)}
}

// Announce adds origin to the prefix's origin set.
func (r *RIB) Announce(p netip.Prefix, origin ASN) {
	p = p.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.routes[p]
	if set == nil {
		set = make(map[ASN]bool)
		r.routes[p] = set
		if p.Addr().Is4() {
			r.maskLens4[p.Bits()]++
		} else {
			r.maskLens6[p.Bits()]++
		}
	}
	set[origin] = true
}

// Withdraw removes origin from the prefix's origin set, dropping the route
// entirely when no origins remain.
func (r *RIB) Withdraw(p netip.Prefix, origin ASN) {
	p = p.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.routes[p]
	if set == nil {
		return
	}
	delete(set, origin)
	if len(set) == 0 {
		delete(r.routes, p)
		if p.Addr().Is4() {
			r.maskLens4[p.Bits()]--
		} else {
			r.maskLens6[p.Bits()]--
		}
	}
}

// Origins returns the origin set of the most specific announced prefix
// containing addr, plus the prefix itself. ok is false when no route
// covers addr.
func (r *RIB) Origins(addr netip.Addr) (origins []ASN, prefix netip.Prefix, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	maxBits := 32
	lens := r.maskLens4[:]
	if !addr.Is4() {
		maxBits = 128
		lens = r.maskLens6[:]
	}
	for bits := maxBits; bits >= 0; bits-- {
		if lens[bits] == 0 {
			continue
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if set, found := r.routes[p]; found {
			out := make([]ASN, 0, len(set))
			for asn := range set {
				out = append(out, asn)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out, p, true
		}
	}
	return nil, netip.Prefix{}, false
}

// Routes returns all announced prefixes with their origins, sorted by
// prefix string — the source material for a pfx2as snapshot.
func (r *RIB) Routes() []Route {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Route, 0, len(r.routes))
	for p, set := range r.routes {
		route := Route{Prefix: p}
		for asn := range set {
			route.Origins = append(route.Origins, asn)
		}
		sort.Slice(route.Origins, func(i, j int) bool { return route.Origins[i] < route.Origins[j] })
		out = append(out, route)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

// Len returns the number of announced prefixes.
func (r *RIB) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.routes)
}

// Route is one announced prefix and its origin set.
type Route struct {
	Prefix  netip.Prefix
	Origins []ASN
}

// Snapshot renders the RIB in the Routeviews pfx2as text format consumed
// by internal/pfx2as: "prefix<TAB>length<TAB>origins", with multi-origin
// sets joined by underscores.
func (r *RIB) Snapshot() string {
	var sb strings.Builder
	for _, route := range r.Routes() {
		parts := make([]string, len(route.Origins))
		for i, a := range route.Origins {
			parts[i] = fmt.Sprintf("%d", uint32(a))
		}
		fmt.Fprintf(&sb, "%s\t%d\t%s\n", route.Prefix.Addr(), route.Prefix.Bits(), strings.Join(parts, "_"))
	}
	return sb.String()
}
