package dnsclient

import (
	"net/netip"
	"testing"
)

func TestHealthScoring(t *testing.T) {
	h := newHealthTable()
	s := netip.MustParseAddrPort("10.0.0.1:53")
	if h.Score(s) != 1 {
		t.Errorf("unknown server score = %v, want 1", h.Score(s))
	}
	h.fail(s)
	h.fail(s)
	if got := h.Score(s); got >= unhealthyScore {
		t.Errorf("score after 2 timeouts = %v, want < %v", got, unhealthyScore)
	}
	if h.penalty(s) != 1 {
		t.Errorf("penalty = %d, want 1 (low score, breaker closed)", h.penalty(s))
	}
	h.ok(s)
	if h.get(s).consecFails != 0 {
		t.Error("success did not reset consecutive-failure count")
	}
}

func TestBreakerTripAndRecovery(t *testing.T) {
	h := newHealthTable()
	s := netip.MustParseAddrPort("10.0.0.2:53")
	for i := 0; i < breakerTrip; i++ {
		h.fail(s)
	}
	if h.penalty(s) != 2 {
		t.Fatalf("penalty after %d consecutive timeouts = %d, want 2 (open)", breakerTrip, h.penalty(s))
	}
	// The breaker stays open for breakerCooldown logical exchanges...
	h.tick += breakerCooldown - 1
	if h.penalty(s) != 2 {
		t.Error("breaker closed before cooldown elapsed")
	}
	// ...then allows a half-open probe.
	h.tick++
	if h.penalty(s) == 2 {
		t.Error("breaker still open after cooldown")
	}
	// A success closes it fully.
	h.ok(s)
	if h.get(s).openUntil != 0 {
		t.Error("success did not close the breaker")
	}
}

func TestOrderRotatesAndSortsHealthyFirst(t *testing.T) {
	h := newHealthTable()
	a := netip.MustParseAddrPort("10.0.0.1:53")
	b := netip.MustParseAddrPort("10.0.0.2:53")
	c := netip.MustParseAddrPort("10.0.0.3:53")
	servers := []netip.AddrPort{a, b, c}
	// With uniform health, rot purely rotates the start.
	if got := h.order(servers, 1); got[0] != b || got[1] != c || got[2] != a {
		t.Errorf("order(rot=1) = %v", got)
	}
	// A breaker-open server sinks to the back regardless of rotation.
	for i := 0; i < breakerTrip; i++ {
		h.fail(b)
	}
	for rot := uint64(0); rot < 6; rot++ {
		got := h.order(servers, rot)
		if got[len(got)-1] != b {
			t.Errorf("order(rot=%d) = %v: open-breaker server not last", rot, got)
		}
	}
	// All-open degrades to plain rotation, not failure.
	for _, s := range servers {
		for i := 0; i < breakerTrip; i++ {
			h.fail(s)
		}
	}
	if got := h.order(servers, 2); got[0] != c {
		t.Errorf("all-open order(rot=2) = %v, want rotation preserved", got)
	}
}
