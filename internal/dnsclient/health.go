package dnsclient

import (
	"net/netip"
	"sort"
)

// Per-server health tracking: the paper's crawl queried millions of
// nameservers of wildly varying quality, and a measurement day must not
// be stalled by the dead ones. Each resolver keeps a health score per
// server it has talked to — an EWMA of answer/timeout outcomes — plus a
// simple circuit breaker: a server that times out breakerTrip times in a
// row is "open" and deprioritized for breakerCooldown queries, after
// which one probe (half-open) decides whether it recovers.
//
// Like the rest of the Resolver, the table is single-goroutine: the
// pipeline creates one resolver per worker.

// Breaker and scoring tunables.
const (
	// breakerTrip consecutive timeouts open the circuit.
	breakerTrip = 3
	// breakerCooldown is how many subsequent exchanges the circuit stays
	// open before a half-open probe is allowed.
	breakerCooldown = 24
	// healthAlpha is the EWMA weight of the newest outcome.
	healthAlpha = 0.3
	// unhealthyScore is the EWMA level below which a server is
	// deprioritized even with the breaker closed.
	unhealthyScore = 0.5
)

// serverHealth is one nameserver's record.
type serverHealth struct {
	score       float64 // EWMA of outcomes: 1 = answered, 0 = timed out
	consecFails int
	openUntil   int64 // breaker open until this tick (0 = closed)
}

// healthTable tracks every server a resolver has exchanged with. The
// tick is a logical clock advanced once per exchange, so cooldowns are
// measured in query volume, not wall time — deterministic under test.
type healthTable struct {
	tick    int64
	servers map[netip.AddrPort]*serverHealth
}

func newHealthTable() *healthTable {
	return &healthTable{servers: make(map[netip.AddrPort]*serverHealth)}
}

func (h *healthTable) get(s netip.AddrPort) *serverHealth {
	sh := h.servers[s]
	if sh == nil {
		sh = &serverHealth{score: 1} // innocent until timed out
		h.servers[s] = sh
	}
	return sh
}

// ok records a successful exchange: the breaker closes, the score rises.
func (h *healthTable) ok(s netip.AddrPort) {
	sh := h.get(s)
	sh.score += healthAlpha * (1 - sh.score)
	sh.consecFails = 0
	if sh.openUntil != 0 {
		sh.openUntil = 0
		mBreakerClose.Inc()
	}
}

// fail records a timeout; enough consecutive ones trip the breaker.
func (h *healthTable) fail(s netip.AddrPort) {
	sh := h.get(s)
	sh.score -= healthAlpha * sh.score
	sh.consecFails++
	if sh.consecFails >= breakerTrip && sh.openUntil <= h.tick {
		sh.openUntil = h.tick + breakerCooldown
		mBreakerOpen.Inc()
	}
}

// penalty ranks a server for ordering: 0 = healthy, 1 = low score,
// 2 = breaker open. Unknown servers are healthy.
func (h *healthTable) penalty(s netip.AddrPort) int {
	sh := h.servers[s]
	switch {
	case sh == nil:
		return 0
	case sh.openUntil > h.tick:
		return 2
	case sh.score < unhealthyScore:
		return 1
	default:
		return 0
	}
}

// Score exposes a server's current health in [0,1] (1 when unknown).
func (h *healthTable) Score(s netip.AddrPort) float64 {
	if sh := h.servers[s]; sh != nil {
		return sh.score
	}
	return 1
}

// order returns servers rotated by rot and stably sorted healthy-first:
// the rotation spreads first-query load across the NS set (a slow
// servers[0] must not eat every resolution's timeout budget), and the
// partition pushes breaker-open servers to the back, where they are
// still reachable as a last resort — an all-open set degrades to plain
// rotation rather than failing outright.
func (h *healthTable) order(servers []netip.AddrPort, rot uint64) []netip.AddrPort {
	out := make([]netip.AddrPort, len(servers))
	start := int(rot % uint64(len(servers)))
	for i := range servers {
		out[i] = servers[(start+i)%len(servers)]
	}
	sort.SliceStable(out, func(i, j int) bool {
		return h.penalty(out[i]) < h.penalty(out[j])
	})
	return out
}
