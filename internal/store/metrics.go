package store

import "dpsadopt/internal/obs"

// Stage III storage metrics. Rows are counted at Commit (the append
// path), partitions and resident rows track the streaming runner's
// measure-fold-drop cycle.
var (
	mRows = obs.Default().Counter("store_rows_total",
		"rows committed across all stores; rate() gives the append rate")
	mCommits = obs.Default().Counter("store_commits_total",
		"writer batches merged into a store")
	mPartitions = obs.Default().Gauge("store_partitions",
		"(source, day) partitions currently resident in memory")
	mResidentRows = obs.Default().Gauge("store_resident_rows",
		"rows currently resident across partitions (falls when days are dropped)")
	// Crash-safety counters for the v4 checksummed format: CRC failures
	// count detected torn writes / corruption at rest, quarantines count
	// partitions (or whole spool files) moved aside by salvaging loads.
	mCRCFailures = obs.Default().Counter("store_crc_failures_total",
		"partition/dictionary/directory checksum mismatches detected at load")
	mQuarantined = obs.Default().Counter("store_quarantined_partitions_total",
		"damaged partitions moved into quarantine/ by salvaging loads")
	// Out-of-core read path (store.Reader): opens, on-demand partition
	// decodes, LRU hits, and raw bytes pread from dataset files. A high
	// decode:hit ratio on an interactive consumer means the cache is
	// undersized; streaming sweeps visit each partition once, so decodes
	// ≈ partitions is expected there.
	mReaderOpens = obs.Default().Counter("store_reader_opens_total",
		"datasets opened for streaming reads (store.Open)")
	mReaderPartitionsDecoded = obs.Default().Counter("store_reader_partitions_decoded_total",
		"partitions decoded on demand by streaming readers")
	mReaderCacheHits = obs.Default().Counter("store_reader_cache_hits_total",
		"partition acquisitions served from a reader's decoded-partition LRU")
	mReaderBytesRead = obs.Default().Counter("store_reader_bytes_read_total",
		"partition bytes pread from dataset files by streaming readers")
)
