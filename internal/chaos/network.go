package chaos

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"dpsadopt/internal/transport"
)

// Network wraps a transport.Network and injects the configured datagram
// faults on every send. It composes with all three transports (Mem, UDP,
// MappedUDP) and passes stream (TCP) traffic through unmodified — TCP is
// reliable; only dialing a blackholed server fails.
//
// Fault decisions are deterministic: each datagram's fate is a hash of
// (seed, sender, destination, per-flow sequence number). Two runs with
// the same seed and the same per-flow send sequences inject exactly the
// same faults, independent of goroutine scheduling across flows.
type Network struct {
	inner transport.Network
	cfg   Config
	seed  uint64

	mu        sync.Mutex
	protected map[netip.Addr]bool
}

// Wrap layers the scenario's network faults over inner. The seed defines
// the run's fault pattern; the same (cfg, seed) always injects the same
// faults.
func Wrap(inner transport.Network, cfg Config, seed int64) *Network {
	return &Network{
		inner:     inner,
		cfg:       cfg,
		seed:      uint64(seed),
		protected: make(map[netip.Addr]bool),
	}
}

// Protect exempts addresses from DeadFraction blackholing — typically the
// root servers, so a dead-ns scenario degrades resolution instead of
// severing the namespace at its first hop.
func (n *Network) Protect(addrs ...netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range addrs {
		n.protected[a] = true
	}
}

// Config returns the active scenario configuration.
func (n *Network) Config() Config { return n.cfg }

// dead reports whether dst is blackholed. Only name-server addresses
// (port 53) die: responses to ephemeral client ports always route.
func (n *Network) dead(dst netip.AddrPort) bool {
	if n.cfg.DeadFraction <= 0 || dst.Port() != transport.DNSPort {
		return false
	}
	n.mu.Lock()
	prot := n.protected[dst.Addr()]
	n.mu.Unlock()
	if prot {
		return false
	}
	return unit(mix2(mix2(n.seed, 0xdeadd00d), hashString(dst.Addr().String()))) < n.cfg.DeadFraction
}

// Listen implements transport.Network.
func (n *Network) Listen(addr netip.AddrPort) (transport.Conn, error) {
	c, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return newFaultConn(n, c), nil
}

// Dial implements transport.Network.
func (n *Network) Dial(local netip.Addr) (transport.Conn, error) {
	c, err := n.inner.Dial(local)
	if err != nil {
		return nil, err
	}
	return newFaultConn(n, c), nil
}

// ListenStream implements transport.StreamNetwork when the inner network
// does.
func (n *Network) ListenStream(addr netip.AddrPort) (transport.StreamListener, error) {
	sn, ok := n.inner.(transport.StreamNetwork)
	if !ok {
		return nil, fmt.Errorf("chaos: inner transport has no stream support")
	}
	return sn.ListenStream(addr)
}

// DialStream implements transport.StreamNetwork. Dialing a blackholed
// server fails — a dead host is dead on every protocol.
func (n *Network) DialStream(local netip.Addr, remote netip.AddrPort) (net.Conn, error) {
	sn, ok := n.inner.(transport.StreamNetwork)
	if !ok {
		return nil, fmt.Errorf("chaos: inner transport has no stream support")
	}
	if n.dead(remote) {
		mInjected.With("blackhole").Inc()
		return nil, fmt.Errorf("%w: %v (chaos: dead server)", transport.ErrNoRoute, remote)
	}
	return sn.DialStream(local, remote)
}

// faultConn applies the scenario to every outgoing datagram.
type faultConn struct {
	net   *Network
	inner transport.Conn
	local uint64 // hashed local address, fixed per conn

	mu   sync.Mutex
	seqs map[netip.AddrPort]uint64 // per-destination flow sequence
}

func newFaultConn(n *Network, inner transport.Conn) *faultConn {
	return &faultConn{
		net:   n,
		inner: inner,
		local: hashString(inner.LocalAddr().String()),
		seqs:  make(map[netip.AddrPort]uint64),
	}
}

func (c *faultConn) LocalAddr() netip.AddrPort { return c.inner.LocalAddr() }

func (c *faultConn) ReadFrom(buf []byte, timeout time.Duration) (int, netip.AddrPort, error) {
	return c.inner.ReadFrom(buf, timeout)
}

func (c *faultConn) Close() error { return c.inner.Close() }

// Per-fault decision streams, mixed into the flow hash so each fault
// draws independently.
const (
	streamLoss = iota + 1
	streamDup
	streamReorder
	streamJitter
	streamSpike
)

func (c *faultConn) WriteTo(p []byte, to netip.AddrPort) error {
	cfg := c.net.cfg
	if !cfg.Active() {
		return c.inner.WriteTo(p, to)
	}
	if c.net.dead(to) {
		mInjected.With("blackhole").Inc()
		return nil // vanishes, like UDP to a dead host
	}
	c.mu.Lock()
	seq := c.seqs[to]
	c.seqs[to] = seq + 1
	c.mu.Unlock()
	base := mix2(mix2(c.net.seed, c.local), mix2(hashString(to.String()), seq))
	if cfg.Loss > 0 && unit(mix2(base, streamLoss)) < cfg.Loss {
		mInjected.With("loss").Inc()
		return nil
	}
	dup := cfg.Duplicate > 0 && unit(mix2(base, streamDup)) < cfg.Duplicate
	delay := time.Duration(0)
	if cfg.SpikeProb > 0 && unit(mix2(base, streamSpike)) < cfg.SpikeProb {
		delay = cfg.SpikeDelay
		mInjected.With("spike").Inc()
	} else {
		if cfg.Latency > 0 {
			delay = cfg.Latency
		}
		if cfg.Jitter > 0 {
			delay += time.Duration(unit(mix2(base, streamJitter)) * float64(cfg.Jitter))
		}
		if cfg.Reorder > 0 && unit(mix2(base, streamReorder)) < cfg.Reorder {
			delay += cfg.ReorderDelay
			mInjected.With("reorder").Inc()
		}
	}
	send := func() error { return c.inner.WriteTo(p, to) }
	if dup {
		mInjected.With("duplicate").Inc()
	}
	if delay > 0 {
		// Deliver later; the payload must outlive the caller's buffer.
		held := append([]byte(nil), p...)
		time.AfterFunc(delay, func() { _ = c.inner.WriteTo(held, to) })
		if dup {
			time.AfterFunc(delay, func() { _ = c.inner.WriteTo(held, to) })
		}
		mInjected.With("delay").Inc()
		return nil
	}
	if err := send(); err != nil {
		return err
	}
	if dup {
		return send()
	}
	return nil
}
