package report

import (
	"strings"
	"testing"

	"dpsadopt/internal/analysis"
	"dpsadopt/internal/core"
	"dpsadopt/internal/experiment"
	"dpsadopt/internal/simtime"
)

func TestTable1Rendering(t *testing.T) {
	var sb strings.Builder
	Table1(&sb, []experiment.SourceStats{
		{Source: "com", FirstDay: 0, Days: 550, UniqueSLDs: 161200, DataPoints: 534500, CompressedBytes: 17 << 30},
		{Source: "net", FirstDay: 0, Days: 550, UniqueSLDs: 20200, DataPoints: 62400, CompressedBytes: 2 << 30},
	})
	out := sb.String()
	for _, want := range []string{"com", "161200", "17.0GiB", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	var sb strings.Builder
	row := core.ProviderRefs{Name: "CloudFlare", ASNs: []uint32{13335}, CNAMESLDs: []string{"cloudflare.net"}, NSSLDs: []string{"cloudflare.com"}}
	Table2(&sb, &experiment.Table2Result{
		Discovered: []core.ProviderRefs{row},
		Truth:      []core.ProviderRefs{row},
		Exact:      []bool{true},
	})
	if !strings.Contains(sb.String(), "EXACT") || !strings.Contains(sb.String(), "13335") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func days(n int) []simtime.Day {
	out := make([]simtime.Day, n)
	for i := range out {
		out[i] = simtime.Day(i)
	}
	return out
}

func TestFigure2Rendering(t *testing.T) {
	var sb strings.Builder
	d := days(30)
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = float64(100 + i)
	}
	Figure2(&sb, []experiment.Series{{Name: "com", Days: d, Vals: vals}}, 5)
	out := sb.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "2015-03-01") {
		t.Errorf("output:\n%s", out)
	}
	if strings.Count(out, "\n") > 12 {
		t.Errorf("sampling not applied:\n%s", out)
	}
}

func TestGrowthRendering(t *testing.T) {
	var sb strings.Builder
	g := analysis.GrowthResult{
		Days:      days(10),
		Adoption:  []float64{1, 1.02, 1.05, 1.08, 1.1, 1.12, 1.15, 1.18, 1.2, 1.24},
		Expansion: []float64{1, 1.01, 1.02, 1.03, 1.04, 1.05, 1.06, 1.07, 1.08, 1.09},
	}
	Growth(&sb, "Figure 5", g, 5)
	out := sb.String()
	if !strings.Contains(out, "adoption 1.240x") || !strings.Contains(out, "expansion 1.090x") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFigure7Rendering(t *testing.T) {
	var sb strings.Builder
	Figure7(&sb, []experiment.Figure7Panel{{
		Provider: "Incapsula",
		Bins: []analysis.FluxBin{
			{Start: 0, In: 55, Out: 0},
			{Start: 14, In: 0, Out: 50},
			{Start: 28},
		},
	}})
	out := sb.String()
	if !strings.Contains(out, "Incapsula") || !strings.Contains(out, "delta=55") || !strings.Contains(out, "delta=-50") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFigure8Rendering(t *testing.T) {
	var sb strings.Builder
	Figure8(&sb, []experiment.Figure8Panel{{
		Provider: "Neustar",
		Stats:    analysis.PeakStats{Domains: 3, Durations: []int{1, 2, 2, 3, 4, 7, 14}},
		P80:      7,
	}})
	if !strings.Contains(sb.String(), "p80 = 7d") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestAnomaliesRendering(t *testing.T) {
	var sb strings.Builder
	Anomalies(&sb, []experiment.AnomalyReport{{
		Provider: "Incapsula",
		Attribution: analysis.Attribution{
			Swing:  analysis.Swing{Day: 4, Delta: 55},
			Joined: 55,
			Shared: []analysis.SLDShare{{SLD: "wixdns.net", Domains: 55, Fraction: 1.0}},
		},
	}})
	out := sb.String()
	if !strings.Contains(out, "wixdns.net") || !strings.Contains(out, "100%") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSeriesCSV(t *testing.T) {
	var sb strings.Builder
	err := SeriesCSV(&sb, days(3), map[string][]float64{"a": {1, 2, 3}, "b": {4, 5, 6}}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	want := "date,a,b\n2015-03-01,1,4\n2015-03-02,2,5\n2015-03-03,3,6\n"
	if sb.String() != want {
		t.Errorf("csv:\n%s", sb.String())
	}
}

func TestFigure4Rendering(t *testing.T) {
	var sb strings.Builder
	Figure4(&sb, experiment.Figure4Result{
		Namespace: map[string]float64{"com": 0.8247, "net": 0.1033, "org": 0.0721},
		DPSUse:    map[string]float64{"com": 0.8571, "net": 0.0822, "org": 0.0607},
	})
	out := sb.String()
	if !strings.Contains(out, "82.47%") || !strings.Contains(out, "85.71%") {
		t.Errorf("output:\n%s", out)
	}
}

func TestClassificationRendering(t *testing.T) {
	var sb strings.Builder
	Classification(&sb, []experiment.ClassificationRow{
		{Provider: "CloudFlare", AlwaysOn: 1800, OnDemand: 49, Single: 120, Other: 30},
	})
	out := sb.String()
	if !strings.Contains(out, "CloudFlare") || !strings.Contains(out, "1800") {
		t.Errorf("output:\n%s", out)
	}
}

func TestWriteSVGChart(t *testing.T) {
	var sb strings.Builder
	d := days(120)
	a := make([]float64, 120)
	b := make([]float64, 120)
	for i := range a {
		a[i] = 1000 + float64(i)*3
		b[i] = 100 + float64(i)
	}
	err := WriteSVGChart(&sb, "Figure 5 <test>", d, []SVGSeries{
		{Name: "adoption", Vals: a}, {Name: "expansion", Vals: b},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "polyline", "Figure 5 &lt;test&gt;", "adoption", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("polylines = %d", strings.Count(out, "<polyline"))
	}
	// Log scale with a zero value must not emit NaN coordinates.
	b[0] = 0
	sb.Reset()
	if err := WriteSVGChart(&sb, "log", d, []SVGSeries{{Name: "x", Vals: b}}, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Error("NaN coordinates in log chart")
	}
	// Empty input errors.
	if err := WriteSVGChart(&sb, "empty", nil, nil, false); err == nil {
		t.Error("empty chart accepted")
	}
}
