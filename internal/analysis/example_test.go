package analysis_test

import (
	"fmt"

	"dpsadopt/internal/analysis"
)

// ExampleSmooth shows the §4.2 trend cleaning: a Wix-sized spike
// disappears, the underlying growth stays.
func ExampleSmooth() {
	series := make([]float64, 200)
	for i := range series {
		series[i] = 1000 + float64(i) // slow genuine growth
		if i >= 90 && i < 95 {
			series[i] += 5000 // a five-day third-party anomaly
		}
	}
	smoothed := analysis.Smooth(series)
	rel := analysis.Relative(smoothed)
	fmt.Printf("spike day raw: %.0f\n", series[92])
	fmt.Printf("spike day cleaned: %.0f\n", smoothed[92])
	fmt.Printf("growth: %.2fx\n", rel[len(rel)-1])
	// Output:
	// spike day raw: 6092
	// spike day cleaned: 1087
	// growth: 1.19x
}

// ExamplePeakStats shows the Fig 8 quantile computation.
func ExamplePeakStats() {
	st := analysis.PeakStats{Durations: []int{1, 2, 3, 4, 4, 5, 7, 10, 11, 31}}
	fmt.Println("p80 =", st.P(0.8), "days")
	// Output:
	// p80 = 11 days
}
