package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"dpsadopt/internal/simtime"
)

// Reader is the out-of-core read path over a .dpsa dataset: it opens the
// file via the v3+ partition directory and serves per-partition decodes
// on demand, so consumers (streaming detection, the API index build,
// dpsdata) hold O(largest partition × concurrent acquires) in memory
// instead of the whole archive. Contrast Load, which decodes every
// partition up front; Load remains the parity oracle and the right call
// when the caller genuinely needs a resident *Store.
//
// Each AcquireBatch is one pread of the partition's byte range
// (CRC-verified against the directory entry on v4 files, in the same
// pass that decodes it), cached in a small LRU of decoded partitions and
// backed by pooled column buffers, so a full streaming sweep's
// steady-state allocations stay bounded by the pool, not the dataset.
//
// Version 2 files predate the directory: Open falls back to one
// sequential full decode (the ErrNoDirectory path, hidden from callers)
// and serves acquires from the resident copy.
//
// A Reader is safe for concurrent use. It never writes: a corrupt
// partition surfaces as a *CorruptPartitionError from AcquireBatch
// instead of being quarantined on disk (quarantine is Load's job — the
// read path must stay usable against files it has no right to move).
type Reader struct {
	path string
	f    *os.File
	meta fileMeta

	dir   []PartitionInfo
	byKey map[PartitionKey]PartitionInfo

	dictOnce sync.Once
	dict     *Dict
	dictErr  error

	// fallback holds the fully decoded archive for version 2 files; all
	// acquires are served from it and the LRU machinery sits idle.
	fallback *Store

	mu       sync.Mutex
	closed   bool
	cache    map[PartitionKey]*cachedBlock
	lru      []PartitionKey // recency order, most recent last
	capacity int
	inflight map[PartitionKey]chan struct{}

	blkPool sync.Pool // *dayBlock, column slices reused across decodes
	bufPool sync.Pool // *[]byte, raw partition bytes
}

// cachedBlock is one decoded partition resident in the Reader's LRU.
// pins counts outstanding acquires; only unpinned blocks are evicted, so
// a batch stays valid until its release is called.
type cachedBlock struct {
	blk  *dayBlock
	pins int
}

// DefaultCachePartitions is the decoded-partition LRU capacity a fresh
// Reader starts with. Streaming detection visits each partition once, so
// the cache exists for interactive consumers (dpsdata, repeated spool
// reads); concurrent pins may push residency above it temporarily.
const DefaultCachePartitions = 4

// CorruptPartitionError reports a partition whose bytes failed the
// checksum or structural validation during a streaming read — the
// quarantine-candidate signal of the read-only path. The partition's
// rows are never returned; the caller decides whether to skip, fail, or
// hand the file to a salvaging Load (which quarantines on disk).
type CorruptPartitionError struct {
	Source string
	Day    simtime.Day
	Err    error
}

func (e *CorruptPartitionError) Error() string {
	return fmt.Sprintf("store: partition %s/%s unreadable: %v", e.Source, e.Day, e.Err)
}

func (e *CorruptPartitionError) Unwrap() error { return e.Err }

// Open opens a dataset file for streaming partition reads. On v3+ files
// only the footer and directory are read (plus, on v4, one checksum pass
// over the shared dictionary and directory sections) — no partition is
// decoded and the dictionary itself decodes lazily on first use. Version
// 2 files fall back to a sequential full decode held in memory.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	version, err := readHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r := &Reader{
		path:     path,
		f:        f,
		capacity: DefaultCachePartitions,
		cache:    make(map[PartitionKey]*cachedBlock),
		inflight: make(map[PartitionKey]chan struct{}),
	}
	r.blkPool.New = func() any { return &dayBlock{} }
	r.bufPool.New = func() any { return new([]byte) }
	if version < 3 {
		if err := r.openFallback(version); err != nil {
			f.Close()
			return nil, err
		}
		mReaderOpens.Inc()
		return r, nil
	}
	meta, err := readFooter(f, version)
	if err != nil {
		f.Close()
		return nil, err
	}
	dir, err := readDirectoryAt(f, meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	if version >= 4 {
		if err := verifySharedSections(f, meta, dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	r.meta = meta
	r.dir = dir
	r.byKey = IndexDirectory(dir)
	mReaderOpens.Inc()
	return r, nil
}

// openFallback is Open's version-2 path: no directory to seek by, so the
// archive is decoded once (the ErrNoDirectory fallback) and a directory
// listing is synthesized from the resident partitions.
func (r *Reader) openFallback(version uint32) error {
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s, err := decode(bufio.NewReaderSize(r.f, 1<<20))
	if err != nil {
		return err
	}
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	r.meta = fileMeta{version: version, size: st.Size()}
	r.fallback = s
	for _, src := range s.Sources() {
		for _, day := range s.Days(src) {
			r.dir = append(r.dir, PartitionInfo{
				Source: src, Day: day, Rows: s.blocks[src][day].rows(),
			})
		}
	}
	r.byKey = IndexDirectory(r.dir)
	return nil
}

// Close releases the Reader. Outstanding batches must be released first;
// acquires racing Close fail with a read error.
func (r *Reader) Close() error {
	r.mu.Lock()
	r.closed = true
	r.cache = make(map[PartitionKey]*cachedBlock)
	r.lru = nil
	r.mu.Unlock()
	return r.f.Close()
}

// Version reports the file's format version.
func (r *Reader) Version() uint32 { return r.meta.version }

// Partitions lists the file's (source, day) partitions in sorted
// (source, day) order, from the directory alone.
func (r *Reader) Partitions() []PartitionInfo {
	return append([]PartitionInfo(nil), r.dir...)
}

// Keys lists the file's partition keys in sorted (source, day) order.
func (r *Reader) Keys() []PartitionKey {
	out := make([]PartitionKey, len(r.dir))
	for i, ent := range r.dir {
		out[i] = ent.Key()
	}
	return out
}

// SetCachePartitions resizes the decoded-partition LRU (minimum 1).
func (r *Reader) SetCachePartitions(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.capacity = n
	r.evictLocked()
	r.mu.Unlock()
}

// SharedDict returns the file's dictionary, decoding it on first call.
// It implements half of core's BatchSource contract; *Store carries the
// same method for the in-memory side.
func (r *Reader) SharedDict() (*Dict, error) {
	if r.fallback != nil {
		return r.fallback.dict, nil
	}
	r.dictOnce.Do(func() {
		s := New()
		if err := readDictAt(r.f, s); err != nil {
			r.dictErr = fmt.Errorf("store: reading dictionary: %w", err)
			return
		}
		r.dict = s.dict
	})
	return r.dict, r.dictErr
}

// AcquireBatch decodes (or fetches from the LRU) one partition and
// returns its columnar view plus a release func. The batch is valid only
// until release is called — the backing columns may then be recycled for
// another partition — and release must be called exactly once. A
// checksum or structural failure returns a *CorruptPartitionError; a key
// absent from the directory is a plain error.
func (r *Reader) AcquireBatch(source string, day simtime.Day) (RowBatch, func(), error) {
	noop := func() {}
	if r.fallback != nil {
		b, _ := r.fallback.RowBatch(source, day)
		return b, noop, nil
	}
	k := PartitionKey{Source: source, Day: day}
	ent, ok := r.byKey[k]
	if !ok {
		return RowBatch{}, noop, fmt.Errorf("store: no partition %s in %s", k, r.path)
	}
	dict, err := r.SharedDict()
	if err != nil {
		return RowBatch{}, noop, err
	}

	r.mu.Lock()
	for {
		if r.closed {
			r.mu.Unlock()
			return RowBatch{}, noop, errors.New("store: reader closed")
		}
		if cb, ok := r.cache[k]; ok {
			cb.pins++
			r.touchLocked(k)
			r.mu.Unlock()
			mReaderCacheHits.Inc()
			return cb.blk.batch(), func() { r.release(cb) }, nil
		}
		ch, busy := r.inflight[k]
		if !busy {
			break
		}
		// Another goroutine is decoding this partition: wait for it and
		// re-check the cache rather than decoding twice.
		r.mu.Unlock()
		<-ch
		r.mu.Lock()
	}
	ch := make(chan struct{})
	r.inflight[k] = ch
	r.mu.Unlock()

	blk, err := r.decodePartition(&ent, dict)

	r.mu.Lock()
	delete(r.inflight, k)
	close(ch)
	if err != nil {
		r.mu.Unlock()
		return RowBatch{}, noop, err
	}
	cb := &cachedBlock{blk: blk, pins: 1}
	r.cache[k] = cb
	r.lru = append(r.lru, k)
	r.evictLocked()
	r.mu.Unlock()
	return blk.batch(), func() { r.release(cb) }, nil
}

func (r *Reader) release(cb *cachedBlock) {
	r.mu.Lock()
	cb.pins--
	r.evictLocked()
	r.mu.Unlock()
}

// touchLocked moves k to the most-recent end of the LRU order.
func (r *Reader) touchLocked(k PartitionKey) {
	for i := range r.lru {
		if r.lru[i] == k {
			copy(r.lru[i:], r.lru[i+1:])
			r.lru[len(r.lru)-1] = k
			return
		}
	}
}

// evictLocked drops least-recently-used unpinned blocks until the cache
// fits. Pinned blocks are never evicted, so concurrent acquires can push
// residency above capacity until their releases land.
func (r *Reader) evictLocked() {
	for len(r.lru) > r.capacity {
		victim := -1
		for i, k := range r.lru {
			if r.cache[k].pins == 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			return
		}
		k := r.lru[victim]
		blk := r.cache[k].blk
		delete(r.cache, k)
		r.lru = append(r.lru[:victim], r.lru[victim+1:]...)
		r.blkPool.Put(blk)
	}
}

// decodePartition preads one partition's byte range into a pooled
// buffer, checks the directory CRC over that same buffer (v4), and
// decodes it into a pooled block — one pass over the bytes where Load
// pays two (a checksum read, then a SectionReader decode).
func (r *Reader) decodePartition(ent *PartitionInfo, dict *Dict) (*dayBlock, error) {
	bufp := r.bufPool.Get().(*[]byte)
	defer r.bufPool.Put(bufp)
	if uint64(cap(*bufp)) < ent.length {
		*bufp = make([]byte, ent.length)
	}
	buf := (*bufp)[:ent.length]
	if _, err := r.f.ReadAt(buf, int64(ent.offset)); err != nil {
		return nil, &CorruptPartitionError{Source: ent.Source, Day: ent.Day,
			Err: fmt.Errorf("reading partition bytes: %w", err)}
	}
	mReaderBytesRead.Add(int64(len(buf)))
	if r.meta.version >= 4 {
		if got := crc32.ChecksumIEEE(buf); got != ent.CRC {
			mCRCFailures.Inc()
			return nil, &CorruptPartitionError{Source: ent.Source, Day: ent.Day,
				Err: fmt.Errorf("checksum mismatch (want %08x, got %08x): torn write or corruption at rest", ent.CRC, got)}
		}
	}
	blk := r.blkPool.Get().(*dayBlock)
	source, day, err := decodeBlockInto(buf, blk, dict.Len())
	if err != nil {
		r.blkPool.Put(blk)
		return nil, &CorruptPartitionError{Source: ent.Source, Day: ent.Day, Err: err}
	}
	if source != ent.Source || day != ent.Day {
		r.blkPool.Put(blk)
		return nil, &CorruptPartitionError{Source: ent.Source, Day: ent.Day,
			Err: fmt.Errorf("directory points at partition %s/%s", source, day)}
	}
	mReaderPartitionsDecoded.Inc()
	return blk, nil
}

// batch is the RowBatch view of a decoded block (the Reader-side twin of
// Store.RowBatch).
func (b *dayBlock) batch() RowBatch {
	return RowBatch{
		Domains: b.domains,
		Kinds:   b.kinds,
		Addrs:   b.addrs,
		Addrs6:  b.addrs6,
		Strs:    b.strs,
		asnOff:  b.asnOff,
		asnVals: b.asnVals,
	}
}

// decodeBlockInto parses one partition's serialized bytes (the exact
// range a directory entry names) into b, reusing b's column slices. It
// mirrors readPartition but works on an in-memory buffer with bounds
// checks instead of a Reader, and validates the block before returning.
func decodeBlockInto(data []byte, b *dayBlock, dictLen int) (source string, day simtime.Day, err error) {
	c := byteCursor{data: data}
	source = c.str()
	day = simtime.Day(c.i64())
	rows := c.u32()
	nV6 := c.u32()
	nASN := c.u32()
	if c.err != nil {
		return "", 0, c.err
	}
	if rows > maxPersistCount || nV6 > rows || nASN > maxPersistCount {
		return "", 0, fmt.Errorf("store: corrupt partition header")
	}
	b.domains = c.u32sInto(b.domains, int(rows))
	kindBytes := c.take(int(rows))
	b.addrs = c.u32sInto(b.addrs, int(rows))
	v6Bytes := c.take(16 * int(nV6))
	b.strs = c.u32sInto(b.strs, int(rows))
	b.asnOff = c.u32sInto(b.asnOff, int(rows))
	b.asnVals = c.u32sInto(b.asnVals, int(nASN))
	if c.err != nil {
		return "", 0, c.err
	}
	if c.off != len(data) {
		return "", 0, fmt.Errorf("store: partition has %d trailing bytes", len(data)-c.off)
	}
	if cap(b.kinds) < int(rows) {
		b.kinds = make([]Kind, rows)
	} else {
		b.kinds = b.kinds[:rows]
	}
	for i, k := range kindBytes {
		if Kind(k) >= numKinds {
			return "", 0, fmt.Errorf("store: bad kind %d", k)
		}
		b.kinds[i] = Kind(k)
	}
	if cap(b.addrs6) < int(nV6) {
		b.addrs6 = make([][16]byte, nV6)
	} else {
		b.addrs6 = b.addrs6[:nV6]
	}
	for i := range b.addrs6 {
		copy(b.addrs6[i][:], v6Bytes[16*i:])
	}
	if err := validateBlock(b, dictLen); err != nil {
		return "", 0, err
	}
	return source, day, nil
}

// byteCursor walks a byte slice with a sticky error, so decode code
// reads linearly and checks once.
type byteCursor struct {
	data []byte
	off  int
	err  error
}

func (c *byteCursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.data)-c.off {
		c.err = io.ErrUnexpectedEOF
		return nil
	}
	p := c.data[c.off : c.off+n]
	c.off += n
	return p
}

func (c *byteCursor) u32() uint32 {
	p := c.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (c *byteCursor) i64() int64 {
	p := c.take(8)
	if p == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(p))
}

func (c *byteCursor) str() string {
	p := c.take(2)
	if p == nil {
		return ""
	}
	return string(c.take(int(binary.LittleEndian.Uint16(p))))
}

// u32sInto decodes n little-endian uint32s, reusing dst's backing array
// when it is large enough.
func (c *byteCursor) u32sInto(dst []uint32, n int) []uint32 {
	p := c.take(4 * n)
	if p == nil {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]uint32, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return dst
}

// ReaderInfo summarises a dataset from its directory alone — what
// dpsdata -info prints without decoding a single partition.
type ReaderInfo struct {
	Path       string
	Version    uint32
	FileBytes  int64
	Partitions int
	Rows       int64
	// PartitionBytes sums the directory's partition byte ranges (zero on
	// version 2 files, whose synthesized directory has no offsets).
	PartitionBytes int64
	Sources        []string
	FirstDay       simtime.Day
	LastDay        simtime.Day
	// Directory is false on version 2 files (resident fallback).
	Directory bool
	// CRCPartitions reports per-partition checksums (version 4+).
	CRCPartitions bool
}

// Info summarises the open dataset without decoding any partition.
func (r *Reader) Info() ReaderInfo {
	info := ReaderInfo{
		Path:          r.path,
		Version:       r.meta.version,
		FileBytes:     r.meta.size,
		Partitions:    len(r.dir),
		Directory:     r.fallback == nil,
		CRCPartitions: r.meta.version >= 4,
	}
	seen := make(map[string]bool)
	for i, ent := range r.dir {
		info.Rows += int64(ent.Rows)
		info.PartitionBytes += int64(ent.length)
		if !seen[ent.Source] {
			seen[ent.Source] = true
			info.Sources = append(info.Sources, ent.Source)
		}
		if i == 0 || ent.Day < info.FirstDay {
			info.FirstDay = ent.Day
		}
		if i == 0 || ent.Day > info.LastDay {
			info.LastDay = ent.Day
		}
	}
	sort.Strings(info.Sources)
	return info
}

// SharedDict implements core's BatchSource contract for the in-memory
// store: the dictionary is already resident.
func (s *Store) SharedDict() (*Dict, error) { return s.dict, nil }

// AcquireBatch implements core's BatchSource contract for the in-memory
// store: the batch aliases resident columns, so release is a no-op and a
// missing partition is an empty batch (matching RowBatch's semantics).
func (s *Store) AcquireBatch(source string, day simtime.Day) (RowBatch, func(), error) {
	b, _ := s.RowBatch(source, day)
	return b, func() {}, nil
}
