package measure

import "dpsadopt/internal/obs"

// Stage bucket bounds: day stages run milliseconds (small worlds) to
// minutes (full namespace), much wider than query latencies.
var stageBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Pipeline metrics, labeled by the paper's Fig 1 stage names: Stage I
// zone acquisition, Stage II worker-cloud resolution, Stage III storage.
var (
	mStageSeconds = obs.Default().HistogramVec("measure_stage_seconds",
		"wall time per pipeline stage per day", "stage", stageBuckets)
	mWorkersActive = obs.Default().Gauge("measure_workers_active",
		"worker goroutines currently measuring a task chunk")
	mDomains = obs.Default().Counter("measure_domains_total",
		"domain measurement tasks completed")
	mDays = obs.Default().Counter("measure_days_total",
		"measurement days completed")
	mDomainsPerSec = obs.Default().Gauge("measure_domains_per_second",
		"throughput of the most recently completed day")
	// Rolling per-domain resolve latency: unlike measure_stage_seconds
	// (cumulative, per-day stages), this ages out, so a long run's
	// /metrics shows the *current* resolve tail rather than the
	// whole-run average. Default windows (5m/1h) and query-latency
	// bounds: a single domain resolves in microseconds (direct) to
	// seconds (wire with retries).
	mResolveWindow = obs.Default().WindowHistogram("measure_resolve_window_seconds",
		"rolling per-domain resolve latency over 5m and 1h windows", nil, 0, 0)
)

const (
	stageZoneAcquisition = "zone_acquisition"
	stageResolution      = "resolution"
	stageStorage         = "storage"
)
