// Command dpsbench is the detection scaling observatory's harness: it
// sweeps GOMAXPROCS × detection workers over a measured dataset, runs
// core.DetectRange to steady state in every cell, and records
// throughput, per-core efficiency, stage timing, allocations, and the
// GC's CPU share per cell to results/BENCH_detect.json (schema
// benchfmt.DetectSchema, one row per cell).
//
// The dataset is either generated (-scale/-days, direct-fidelity
// measurement over a synthetic world — deterministic, so two runs of the
// same binary sweep identical data) or loaded from a prior dpsmeasure
// run (-data run.dpsa).
//
// With -profiles DIR the harness also writes pprof artifacts: one CPU
// profile per cell (cpu_g<G>_w<W>.pprof) and, when -prof-mutex /
// -prof-block are set, a final mutex.pprof / block.pprof covering the
// whole sweep — the inputs for diagnosing which lock or stage eats the
// scaling headroom.
//
// Usage:
//
//	dpsbench [-scale 50000] [-days 4] [-data run.dpsa]
//	         [-gomaxprocs 1,2,4] [-workers 1,2,4] [-mintime 2s]
//	         [-out results/BENCH_detect.json] [-profiles results/profiles]
//	         [-prof-mutex 5] [-prof-block 0] [-quiet] [-log-json]
//	dpsbench -scalesweep 2000,1000,300 [-days 4]
//	         [-scale-out results/BENCH_scale.json]
//
// -scalesweep switches to the out-of-core scale sweep: per scale
// divisor, one dataset is measured to disk and the serving index is
// built twice from that file — store.Load + api.NewIndex versus the
// streaming store.Open + api.NewIndexReader — recording wall time,
// throughput, peak heap/RSS, and a parity check into BENCH_scale.json
// (schema benchfmt.ScaleSchema).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dpsadopt/internal/benchfmt"
	"dpsadopt/internal/core"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func main() {
	var (
		scale      = flag.Int("scale", 50_000, "world scale divisor for the generated dataset")
		days       = flag.Int("days", 4, "days to measure into the generated dataset")
		data       = flag.String("data", "", "load this .dpsa dataset instead of generating one")
		gomaxprocs = flag.String("gomaxprocs", "1,2,4", "comma-separated GOMAXPROCS values to sweep")
		workers    = flag.String("workers", "1,2,4", "comma-separated DetectRange worker counts to sweep")
		minTime    = flag.Duration("mintime", 2*time.Second, "minimum wall time per sweep cell")
		out        = flag.String("out", "results/BENCH_detect.json", "result JSON path")
		profiles   = flag.String("profiles", "", "write pprof profiles into this directory (empty = off)")
		profMutex  = flag.Int("prof-mutex", 0, "mutex profiling fraction (runtime.SetMutexProfileFraction; 0 = off)")
		profBlock  = flag.Int("prof-block", 0, "block profiling rate in ns (runtime.SetBlockProfileRate; 0 = off)")
		quiet      = flag.Bool("quiet", false, "suppress progress logging (warnings still shown)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON")

		scaleSweep = flag.String("scalesweep", "", "comma-separated world scale divisors: run the full-vs-streaming index build sweep instead of the detect sweep")
		scaleOut   = flag.String("scale-out", "results/BENCH_scale.json", "scale sweep result JSON path (with -scalesweep)")
	)
	flag.Parse()

	if *logJSON {
		obs.SetLogger(obs.NewLogger(os.Stderr, slog.LevelInfo, true))
	}
	if *quiet {
		obs.SetQuiet()
	}
	log := obs.Logger()

	if *scaleSweep != "" {
		scales, err := parseList(*scaleSweep)
		if err != nil {
			fatal(fmt.Errorf("-scalesweep: %w", err))
		}
		if err := runScaleSweep(scales, *days, *scaleOut, log); err != nil {
			fatal(err)
		}
		return
	}

	gpList, err := parseList(*gomaxprocs)
	if err != nil {
		fatal(fmt.Errorf("-gomaxprocs: %w", err))
	}
	wList, err := parseList(*workers)
	if err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}
	if *profiles != "" {
		if err := os.MkdirAll(*profiles, 0o755); err != nil {
			fatal(err)
		}
	}
	// Contention profiling covers the entire sweep; the profiles are
	// cumulative, so they are dumped once at the end.
	obs.SetContentionProfiling(*profMutex, *profBlock)

	s, world, err := dataset(*data, *scale, *days)
	if err != nil {
		fatal(err)
	}
	refs := core.MustGroundTruth()
	parts := core.Partitions(s)
	if len(parts) == 0 {
		fatal(fmt.Errorf("dataset has no partitions to detect over"))
	}
	log.Info("sweep starting", "world", world, "partitions", len(parts),
		"num_cpu", runtime.NumCPU(), "gomaxprocs", *gomaxprocs, "workers", *workers,
		"mintime", minTime.String())

	origGP := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origGP)

	doc := &benchfmt.DetectDoc{
		Bench:     "detect",
		Schema:    benchfmt.DetectSchema,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Source:    "dpsbench",
		World:     world,
		DayEngine: dayEngine(s, parts[0], refs, *minTime),
	}
	for _, g := range gpList {
		runtime.GOMAXPROCS(g)
		for _, w := range wList {
			cell := runCell(s, parts, refs, g, w, *minTime, *profiles)
			doc.Sweep = append(doc.Sweep, cell)
			log.Info("cell complete",
				"gomaxprocs", g, "workers", w, "iters", cell.Iters,
				"partitions_per_sec", fmt.Sprintf("%.1f", cell.PartitionsPerSec),
				"utilization", fmt.Sprintf("%.3f", cell.Utilization),
				"allocs_per_partition", fmt.Sprintf("%.0f", cell.AllocsPerPartition),
				"gc_share", fmt.Sprintf("%.3f", cell.GCShare))
		}
	}
	runtime.GOMAXPROCS(origGP)
	doc.FillEfficiency()

	if *profiles != "" {
		dumpContention(*profiles, *profMutex, *profBlock, log)
	}
	if err := doc.Write(*out); err != nil {
		fatal(err)
	}
	log.Info("sweep written", "out", *out, "cells", len(doc.Sweep))

	if !*quiet {
		fmt.Printf("\n%-10s %-8s %12s %12s %8s %10s %9s\n",
			"gomaxprocs", "workers", "parts/sec", "rows/sec", "util", "allocs/pt", "eff/core")
		for _, c := range doc.Sweep {
			fmt.Printf("%-10d %-8d %12.1f %12.0f %8.3f %10.0f %9.2f\n",
				c.Gomaxprocs, c.Workers, c.PartitionsPerSec, c.RowsPerSec,
				c.Utilization, c.AllocsPerPartition, c.EfficiencyPerCore)
		}
	}
}

// dataset builds or loads the store the sweep detects over, returning a
// description for the result doc.
func dataset(data string, scale, days int) (*store.Store, string, error) {
	if data != "" {
		s, err := store.Load(data)
		var partial *store.PartialLoadError
		if errors.As(err, &partial) {
			fmt.Fprintf(os.Stderr, "dpsbench: warning: %v; benchmarking the salvaged dataset\n", partial)
		} else if err != nil {
			return nil, "", err
		}
		return s, "data=" + data, nil
	}
	w, err := worldsim.New(worldsim.DefaultConfig(scale))
	if err != nil {
		return nil, "", err
	}
	s := store.New()
	p := measure.New(w, s, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	for d := 0; d < days; d++ {
		day := w.Cfg.Window.Start + simtime.Day(d)
		if err := p.RunDay(context.Background(), day); err != nil {
			return nil, "", err
		}
	}
	return s, fmt.Sprintf("synthetic scale=%d days=%d", scale, days), nil
}

// dayEngine times the single-partition ID-native scan against the
// retained string-keyed baseline (the ablation the README quotes),
// spending at most a fraction of a cell's budget on each.
func dayEngine(s *store.Store, pt core.Partition, refs *core.References, minTime time.Duration) *benchfmt.DayEngine {
	budget := minTime / 4
	timeIt := func(fn func()) (nsPerOp, allocsPerOp float64) {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		iters := 0
		start := time.Now()
		for time.Since(start) < budget || iters == 0 {
			fn()
			iters++
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		n := float64(iters)
		return float64(elapsed.Nanoseconds()) / n, float64(ms1.Mallocs-ms0.Mallocs) / n
	}
	de := &benchfmt.DayEngine{}
	de.IDNsOp, de.IDAllocsOp = timeIt(func() { core.DetectDay(s, pt.Source, pt.Day, refs) })
	de.BaselineNsOp, de.BaselineAllocsOp = timeIt(func() { core.DetectDayBaseline(s, pt.Source, pt.Day, refs) })
	if de.IDNsOp > 0 {
		de.SpeedupX = de.BaselineNsOp / de.IDNsOp
	}
	if de.IDAllocsOp > 0 {
		de.AllocsRatioX = de.BaselineAllocsOp / de.IDAllocsOp
	}
	return de
}

// cpuClasses reads the runtime's cumulative GC and total CPU seconds
// (estimates, refreshed by metrics.Read).
func cpuClasses() (gc, total float64) {
	samples := []metrics.Sample{
		{Name: "/cpu/classes/gc/total:cpu-seconds"},
		{Name: "/cpu/classes/total:cpu-seconds"},
	}
	metrics.Read(samples)
	return samples[0].Value.Float64(), samples[1].Value.Float64()
}

// runCell runs DetectRange repeatedly at one (gomaxprocs, workers)
// setting until minTime elapses, bracketed by GC/alloc accounting.
func runCell(s *store.Store, parts []core.Partition, refs *core.References, g, w int, minTime time.Duration, profDir string) benchfmt.DetectCell {
	var stopCPU func()
	if profDir != "" {
		path := filepath.Join(profDir, fmt.Sprintf("cpu_g%d_w%d.pprof", g, w))
		if f, err := os.Create(path); err == nil {
			if err := pprof.StartCPUProfile(f); err == nil {
				stopCPU = func() { pprof.StopCPUProfile(); f.Close() }
			} else {
				f.Close()
			}
		}
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	gc0, tot0 := cpuClasses()

	var agg core.RangeStats
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime || iters == 0 {
		dets, st := core.DetectRangeStats(context.Background(), s, parts, refs, w)
		if len(dets) == 0 || dets[0] == nil {
			fatal(fmt.Errorf("cell g=%d w=%d produced no detections", g, w))
		}
		agg.Add(st)
		iters++
	}
	runtime.ReadMemStats(&ms1)
	gc1, tot1 := cpuClasses()
	if stopCPU != nil {
		stopCPU()
	}

	cell := benchfmt.DetectCell{
		Gomaxprocs:       g,
		Workers:          agg.Workers,
		Iters:            iters,
		Partitions:       len(parts),
		Rows:             agg.Rows / int64(iters),
		WallSeconds:      agg.Wall.Seconds(),
		PartitionsPerSec: agg.PartitionsPerSec(),
		Utilization:      agg.Utilization(),
		ScanSeconds:      agg.Scan.Seconds(),
		MergeSeconds:     agg.Merge.Seconds(),
		QueueWaitSeconds: agg.QueueWait.Seconds(),
		BarrierSeconds:   agg.Barrier.Seconds(),
	}
	if agg.Partitions > 0 {
		cell.AllocsPerPartition = float64(ms1.Mallocs-ms0.Mallocs) / float64(agg.Partitions)
	}
	if dTot := tot1 - tot0; dTot > 0 {
		cell.GCShare = (gc1 - gc0) / dTot
	}
	if cell.WallSeconds > 0 {
		cell.RowsPerSec = float64(agg.Rows) / cell.WallSeconds
	}
	return cell
}

// dumpContention writes the sweep-wide mutex/block profiles when their
// collectors were armed.
func dumpContention(dir string, mutexFrac, blockNS int, log *slog.Logger) {
	write := func(name, file string) {
		p := pprof.Lookup(name)
		if p == nil {
			return
		}
		f, err := os.Create(filepath.Join(dir, file))
		if err != nil {
			log.Warn("profile not written", "profile", name, "err", err)
			return
		}
		defer f.Close()
		if err := p.WriteTo(f, 0); err != nil {
			log.Warn("profile not written", "profile", name, "err", err)
			return
		}
		log.Info("profile written", "path", filepath.Join(dir, file))
	}
	if mutexFrac > 0 {
		write("mutex", "mutex.pprof")
	}
	if blockNS > 0 {
		write("block", "block.pprof")
	}
}

// parseList parses a comma-separated list of positive ints.
func parseList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad value %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsbench:", err)
	os.Exit(1)
}
