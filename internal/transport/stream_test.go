package transport

import (
	"errors"
	"net/netip"
	"testing"
	"time"
)

func TestMemStreamRoundTrip(t *testing.T) {
	n := NewMem(51)
	l, err := n.ListenStream(ap("10.0.0.1:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() != ap("10.0.0.1:53") {
		t.Errorf("Addr = %v", l.Addr())
	}
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 8)
		nr, err := conn.Read(buf)
		if err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf[:nr])
		done <- err
	}()
	c, err := n.DialStream(netip.MustParseAddr("10.9.0.1"), ap("10.0.0.1:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	nr, err := c.Read(buf)
	if err != nil || string(buf[:nr]) != "ping" {
		t.Fatalf("echo = %q, %v", buf[:nr], err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMemStreamCloseUnblocksAccept(t *testing.T) {
	n := NewMem(52)
	l, err := n.ListenStream(ap("10.0.0.2:53"))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept not unblocked")
	}
	// Dialing a closed listener fails.
	if _, err := n.DialStream(netip.MustParseAddr("10.9.0.1"), ap("10.0.0.2:53")); err == nil {
		t.Error("dial to closed listener accepted")
	}
}

func TestMemStreamAddrInUse(t *testing.T) {
	n := NewMem(53)
	a := ap("10.0.0.3:53")
	l1, err := n.ListenStream(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ListenStream(a); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("dup err = %v", err)
	}
	// UDP and TCP address spaces are independent.
	u, err := n.Listen(a)
	if err != nil {
		t.Errorf("UDP listen alongside TCP: %v", err)
	} else {
		u.Close()
	}
	l1.Close()
}

func TestTCPStreamRealSockets(t *testing.T) {
	l, err := UDP{}.ListenStream(ap("127.0.0.1:0"))
	if err != nil {
		t.Skipf("cannot bind TCP: %v", err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		if nr, err := conn.Read(buf); err == nil {
			_, _ = conn.Write(buf[:nr])
		}
	}()
	c, err := UDP{}.DialStream(netip.Addr{}, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if nr, err := c.Read(buf); err != nil || string(buf[:nr]) != "hi" {
		t.Fatalf("echo = %q, %v", buf[:nr], err)
	}
}

func TestMappedStreamNAT(t *testing.T) {
	m := NewMappedUDP()
	sim := ap("10.0.0.4:53")
	l, err := m.ListenStream(sim)
	if err != nil {
		t.Skipf("cannot bind: %v", err)
	}
	defer l.Close()
	if l.Addr() != sim {
		t.Errorf("Addr = %v, want simulated %v", l.Addr(), sim)
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("ok"))
		conn.Close()
	}()
	c, err := m.DialStream(netip.MustParseAddr("10.9.0.2"), sim)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 4)
	nr, err := c.Read(buf)
	if err != nil || string(buf[:nr]) != "ok" {
		t.Fatalf("read = %q, %v", buf[:nr], err)
	}
	// Unknown destination refused.
	if _, err := m.DialStream(netip.MustParseAddr("10.9.0.2"), ap("10.0.9.9:53")); err == nil {
		t.Error("dial to unmapped stream accepted")
	}
}
