package api

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"dpsadopt/internal/analysis"
	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// interval is one packed detection interval: a maximal run of
// consecutive measured days on which a domain exhibited the same
// reference methods toward one provider. 12 bytes per interval keeps a
// multi-million-domain index compact; a gap in detection (or a change
// in the method set) starts a new interval.
type interval struct {
	provider uint8
	methods  core.Method
	days     uint16 // measured days covered (== last-first+1 on contiguous data)
	first    int32  // simtime.Day
	last     int32  // simtime.Day, inclusive
}

// Index is the read-optimized view of a loaded dataset: the detection
// pass (core.DetectDay) runs once per partition at build time, and every
// request is then answered from inverted structures — domain → packed
// interval list, provider → daily series — without touching the columnar
// store again. The index is immutable after Build, so readers need no
// locks.
type Index struct {
	refs    *core.References
	sources []string
	days    []simtime.Day // sorted union over sources
	dayPos  map[simtime.Day]int

	domains map[string][]interval // domain → intervals in day order

	series   [][]int64   // [provider][dayIdx] distinct domains using p
	smoothed [][]float64 // §4.2-smoothed counterpart of series
	measured []int64     // [dayIdx] domains with any stored row (summed over sources)
	anyUse   []int64     // [dayIdx] distinct domains using at least one provider

	partitions  int
	epoch       uint64 // bumped by every Apply; 0 for a fresh build
	buildTime   time.Duration
	detectStats core.RangeStats
}

// NewIndex builds the index from a store by running detection over every
// (source, day) partition and merging sources per day (a domain counted
// once per day regardless of how many lists contain it, as §4.1 counts).
// Detection fans out across partitions via core.DetectRange — the build
// folds one shared parallel pass instead of walking partitions
// sequentially.
func NewIndex(s *store.Store, refs *core.References) *Index {
	x, _ := buildIndex(s, core.Partitions(s), refs)
	return x
}

// IndexBuildError reports a streaming index build that skipped
// unreadable partitions. The Index is still valid and serves everything
// that did decode — degraded, not dead — so callers get both.
type IndexBuildError struct {
	Failed []core.PartitionFailure
}

func (e *IndexBuildError) Error() string {
	return fmt.Sprintf("api: index build skipped %d unreadable partition(s), first: %v",
		len(e.Failed), e.Failed[0].Err)
}

// NewIndexReader builds the index out-of-core from a streaming
// *store.Reader: detection workers acquire → detect → release each
// partition, so peak memory is O(workers × largest partition), not the
// dataset. Unreadable partitions degrade the index (their days are
// simply missing data) and come back in an *IndexBuildError alongside
// the still-usable Index.
func NewIndexReader(r *store.Reader, refs *core.References) (*Index, error) {
	x, failed := buildIndex(r, core.ReaderPartitions(r), refs)
	if len(failed) > 0 {
		return x, &IndexBuildError{Failed: failed}
	}
	return x, nil
}

// buildIndex is the shared build: the partition list (sorted
// (source, day), from Partitions or the Reader's directory) defines the
// universe; sources and the day axis derive from it, detection runs via
// core.DetectRangeSource, and the fold consumes results day-major.
func buildIndex(src core.BatchSource, universe []core.Partition, refs *core.References) (*Index, []core.PartitionFailure) {
	start := time.Now()
	np := refs.NumProviders()
	x := &Index{
		refs:    refs,
		dayPos:  make(map[simtime.Day]int),
		domains: make(map[string][]interval),
	}
	srcSet := make(map[string]bool)
	daySet := make(map[simtime.Day]bool)
	for _, pt := range universe {
		if !srcSet[pt.Source] {
			srcSet[pt.Source] = true
			x.sources = append(x.sources, pt.Source)
		}
		daySet[pt.Day] = true
	}
	sort.Strings(x.sources)
	x.days = make([]simtime.Day, 0, len(daySet))
	for d := range daySet {
		x.days = append(x.days, d)
	}
	sort.Slice(x.days, func(i, j int) bool { return x.days[i] < x.days[j] })
	for i, d := range x.days {
		x.dayPos[d] = i
	}

	x.series = make([][]int64, np)
	for p := range x.series {
		x.series[p] = make([]int64, len(x.days))
	}
	x.measured = make([]int64, len(x.days))
	x.anyUse = make([]int64, len(x.days))

	// Day-major partition order keeps each day's detections contiguous,
	// so the fold below consumes the parallel results with one cursor.
	bySrcDay := make(map[core.Partition]bool, len(universe))
	for _, pt := range universe {
		bySrcDay[pt] = true
	}
	var parts []core.Partition
	for _, day := range x.days {
		for _, src := range x.sources {
			if bySrcDay[core.Partition{Source: src, Day: day}] {
				parts = append(parts, core.Partition{Source: src, Day: day})
			}
		}
	}
	// Detection runs in day chunks: each chunk fans out across the worker
	// pool, folds, and lets its DayDetections go before the next chunk
	// decodes. Holding every partition's detections until one global
	// barrier would put an O(dataset) term back into the streaming
	// build's peak; chunks are sized so each still saturates the pool.
	workers := runtime.GOMAXPROCS(0)
	chunkDays := 2
	if len(x.sources) > 0 {
		if need := (2*workers + len(x.sources) - 1) / len(x.sources); need > chunkDays {
			chunkDays = need
		}
	}
	merged := make([]map[string]core.Method, np)
	var failed []core.PartitionFailure
	pi := 0
	for ci := 0; ci < len(x.days); ci += chunkDays {
		cend := ci + chunkDays
		if cend > len(x.days) {
			cend = len(x.days)
		}
		pstart := pi
		for pi < len(parts) && x.dayPos[parts[pi].Day] < cend {
			pi++
		}
		chunk := parts[pstart:pi]
		dets, rst, cfailed := core.DetectRangeSource(context.Background(), src, chunk, refs, 0)
		x.detectStats.Add(rst)
		failed = append(failed, cfailed...)
		ck := 0 // cursor into chunk/dets
		for di := ci; di < cend; di++ {
			day := x.days[di]
			for p := range merged {
				merged[p] = make(map[string]core.Method)
			}
			for ; ck < len(chunk) && chunk[ck].Day == day; ck++ {
				det := dets[ck]
				if det == nil { // unreadable partition: its slot is missing data
					continue
				}
				x.measured[di] += int64(det.DomainsMeasured)
				for p := 0; p < np; p++ {
					det.MergeAny(p, merged[p])
				}
				dets[ck] = nil // folded: the packed arrays are free to go
			}
			prev := simtime.Day(-1 << 30)
			if di > 0 {
				prev = x.days[di-1]
			}
			anySet := make(map[string]bool)
			for p := 0; p < np; p++ {
				x.series[p][di] = int64(len(merged[p]))
				for dom, m := range merged[p] {
					anySet[dom] = true
					x.addDay(dom, p, m, day, prev)
				}
			}
			x.anyUse[di] = int64(len(anySet))
		}
	}
	x.partitions = len(parts) - len(failed)

	x.smoothed = make([][]float64, np)
	for p := 0; p < np; p++ {
		raw := make([]float64, len(x.series[p]))
		for i, v := range x.series[p] {
			raw[i] = float64(v)
		}
		x.smoothed[p] = analysis.Smooth(raw)
	}

	x.buildTime = time.Since(start)
	mIndexDomains.Set(float64(len(x.domains)))
	mIndexDays.Set(float64(len(x.days)))
	mIndexBuildSeconds.Set(x.buildTime.Seconds())
	return x, failed
}

// addDay folds one (domain, provider, methods) detection on day into the
// domain's packed interval list. prev is the previous measured day: an
// interval extends only across consecutive measured days with an
// unchanged method set.
func (x *Index) addDay(dom string, p int, m core.Method, day, prev simtime.Day) {
	x.domains[dom] = appendDetection(x.domains[dom], p, m, day, prev)
}

// appendDetection is the interval-packing step shared by the full build
// and the delta repack: extend the provider's last interval if day is
// the next consecutive measured day with the same methods, else start a
// new interval.
func appendDetection(ivs []interval, p int, m core.Method, day, prev simtime.Day) []interval {
	for i := len(ivs) - 1; i >= 0; i-- {
		if int(ivs[i].provider) != p {
			continue
		}
		if simtime.Day(ivs[i].last) == prev && ivs[i].methods == m {
			ivs[i].last = int32(day)
			ivs[i].days++
			return ivs
		}
		break
	}
	return append(ivs, interval{
		provider: uint8(p),
		methods:  m,
		days:     1,
		first:    int32(day),
		last:     int32(day),
	})
}

// IntervalInfo is one detection interval in presentation form.
type IntervalInfo struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Days    int    `json:"days"`
	Methods string `json:"methods"`
}

// ProviderUse summarises one domain's use of one provider.
type ProviderUse struct {
	Provider  string         `json:"provider"`
	Methods   string         `json:"methods"` // union over all intervals
	FirstSeen string         `json:"first_seen"`
	LastSeen  string         `json:"last_seen"`
	Days      int            `json:"days"`
	PeakRun   int            `json:"peak_run_days"` // longest uninterrupted interval
	Intervals []IntervalInfo `json:"intervals"`
}

// DomainHistory is the /v1/domain/{name} response body.
type DomainHistory struct {
	Domain    string        `json:"domain"`
	FirstSeen string        `json:"first_seen"`
	LastSeen  string        `json:"last_seen"`
	Days      int           `json:"days_detected"`
	Providers []ProviderUse `json:"providers"`
}

// Domain returns the full detection history of one domain, or false if
// the domain never exhibited a DPS reference in the dataset.
func (x *Index) Domain(name string) (DomainHistory, bool) {
	ivs, ok := x.domains[name]
	if !ok {
		return DomainHistory{}, false
	}
	h := DomainHistory{Domain: name}
	byProv := make(map[int]*ProviderUse)
	union := make(map[int]core.Method)
	var order []int
	first, last := int32(1<<31-1), int32(-1<<31)
	daySet := make(map[int32]bool)
	for _, iv := range ivs {
		if iv.first < first {
			first = iv.first
		}
		if iv.last > last {
			last = iv.last
		}
		for d := iv.first; d <= iv.last; d++ {
			if _, ok := x.dayPos[simtime.Day(d)]; ok {
				daySet[d] = true
			}
		}
		p := int(iv.provider)
		u := byProv[p]
		if u == nil {
			u = &ProviderUse{
				Provider:  x.refs.Providers[p].Name,
				FirstSeen: simtime.Day(iv.first).String(),
			}
			byProv[p] = u
			order = append(order, p)
		}
		union[p] |= iv.methods
		u.LastSeen = simtime.Day(iv.last).String()
		u.Days += int(iv.days)
		if int(iv.days) > u.PeakRun {
			u.PeakRun = int(iv.days)
		}
		u.Intervals = append(u.Intervals, IntervalInfo{
			From:    simtime.Day(iv.first).String(),
			To:      simtime.Day(iv.last).String(),
			Days:    int(iv.days),
			Methods: iv.methods.String(),
		})
	}
	sort.Ints(order)
	for _, p := range order {
		byProv[p].Methods = union[p].String()
		h.Providers = append(h.Providers, *byProv[p])
	}
	h.FirstSeen = simtime.Day(first).String()
	h.LastSeen = simtime.Day(last).String()
	h.Days = len(daySet)
	return h, true
}

// ProviderSeries is the /v1/provider/{name}/series response body.
type ProviderSeries struct {
	Provider string    `json:"provider"`
	FirstDay string    `json:"first_day"`
	Days     []string  `json:"days"`
	Raw      []int64   `json:"raw"`
	Smoothed []float64 `json:"smoothed"`
}

// Series returns one provider's daily use counts (raw and §4.2-smoothed).
// Provider names match case-insensitively.
func (x *Index) Series(name string) (ProviderSeries, bool) {
	p := -1
	for i := range x.refs.Providers {
		if strings.EqualFold(x.refs.Providers[i].Name, name) {
			p = i
			break
		}
	}
	if p < 0 {
		return ProviderSeries{}, false
	}
	out := ProviderSeries{
		Provider: x.refs.Providers[p].Name,
		Days:     make([]string, len(x.days)),
		Raw:      append([]int64(nil), x.series[p]...),
		Smoothed: append([]float64(nil), x.smoothed[p]...),
	}
	for i, d := range x.days {
		out.Days[i] = d.String()
	}
	if len(x.days) > 0 {
		out.FirstDay = x.days[0].String()
	}
	return out, true
}

// DayInfo is the /v1/day/{date} response body.
type DayInfo struct {
	Day       string           `json:"day"`
	Measured  int64            `json:"domains_measured"`
	AnyUse    int64            `json:"domains_using_any"`
	Providers map[string]int64 `json:"providers"`
}

// Day returns per-provider totals for one measured day.
func (x *Index) Day(d simtime.Day) (DayInfo, bool) {
	di, ok := x.dayPos[d]
	if !ok {
		return DayInfo{}, false
	}
	out := DayInfo{
		Day:       d.String(),
		Measured:  x.measured[di],
		AnyUse:    x.anyUse[di],
		Providers: make(map[string]int64, len(x.refs.Providers)),
	}
	for p := range x.refs.Providers {
		out.Providers[x.refs.Providers[p].Name] = x.series[p][di]
	}
	return out, true
}

// Stats is the /v1/stats response body. ExampleDomain gives smoke tests
// and quickstarts a known-good /v1/domain key.
type Stats struct {
	Sources           []string `json:"sources"`
	FirstDay          string   `json:"first_day"`
	LastDay           string   `json:"last_day"`
	DaysIndexed       int      `json:"days_indexed"`
	PartitionsIndexed int      `json:"partitions_indexed"`
	DomainsDetected   int      `json:"domains_detected"`
	ExampleDomain     string   `json:"example_domain,omitempty"`
	Providers         []string `json:"providers"`
	IndexBuildMS      float64  `json:"index_build_ms"`
	IndexEpoch        uint64   `json:"index_epoch"`
}

// Stats summarises the loaded dataset and index.
func (x *Index) Stats() Stats {
	st := Stats{
		Sources:           x.sources,
		DaysIndexed:       len(x.days),
		PartitionsIndexed: x.partitions,
		DomainsDetected:   len(x.domains),
		IndexBuildMS:      float64(x.buildTime.Microseconds()) / 1000,
		IndexEpoch:        x.epoch,
	}
	if len(x.days) > 0 {
		st.FirstDay = x.days[0].String()
		st.LastDay = x.days[len(x.days)-1].String()
	}
	for i := range x.refs.Providers {
		st.Providers = append(st.Providers, x.refs.Providers[i].Name)
	}
	for dom := range x.domains {
		if st.ExampleDomain == "" || dom < st.ExampleDomain {
			st.ExampleDomain = dom
		}
	}
	return st
}

// Domains lists every detected domain, sorted (used by benchmarks and
// dpsdata; not exposed as a route).
func (x *Index) Domains() []string {
	out := make([]string, 0, len(x.domains))
	for dom := range x.domains {
		out = append(out, dom)
	}
	sort.Strings(out)
	return out
}

// Days lists the indexed days, sorted.
func (x *Index) Days() []simtime.Day { return append([]simtime.Day(nil), x.days...) }

// Epoch is the index's version: 0 for a fresh NewIndex build, bumped by
// one for every Apply. Readers use it to tell index generations apart.
func (x *Index) Epoch() uint64 { return x.epoch }

// BuildStats reports the detection fan-out the index build performed:
// the (source, day) partitions classified and the wall time spent.
func (x *Index) BuildStats() (partitions int, elapsed time.Duration) {
	return x.partitions, x.buildTime
}

// DetectStats returns the stage-timing summary of the build's
// DetectRange pass, for logging per-core efficiency at startup.
func (x *Index) DetectStats() core.RangeStats { return x.detectStats }
