package dnswire

import (
	"bytes"
	"testing"
)

// FuzzUnpack exercises the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode and decode to an
// equivalent message (up to compression differences).
func FuzzUnpack(f *testing.F) {
	seed, err := sampleMessage().Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0}, 64)) // pointer soup
	q, _ := NewQuery(1, "a.b", TypeA).Pack()
	f.Add(q)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Decoded messages can carry names only expressible via
			// compression artifacts; re-encoding may legitimately fail
			// only for oversized content.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message does not decode: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("round trip changed section sizes")
		}
	})
}

// FuzzUnpackName exercises the name decompressor alone.
func FuzzUnpackName(f *testing.F) {
	buf, _ := appendName(nil, 0, "www.example.com", nil)
	f.Add(buf, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Fuzz(func(t *testing.T, msg []byte, off int) {
		if off < 0 || off > len(msg) {
			return
		}
		name, next, err := unpackName(msg, off)
		if err != nil {
			return
		}
		if next < off && next >= 0 {
			// next may be inside msg after a pointer, but must be valid.
			_ = next
		}
		if len(name) > 4*maxNameLen {
			t.Fatalf("decoded name too long: %d", len(name))
		}
	})
}
