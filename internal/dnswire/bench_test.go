package dnswire

import (
	"testing"
)

// Ablation: name compression on vs off for a referral-shaped response
// (DESIGN.md §5) — compression costs a map per message but shrinks
// referrals, which dominate the measurement traffic.

func benchMessage() *Message {
	m := NewQuery(1, "www.examp.le", TypeA).Reply()
	m.Flags.Authoritative = true
	m.Answers = []RR{
		{Name: "www.examp.le", Type: TypeCNAME, Class: ClassIN, TTL: 300, Data: CNAME{Target: "www-examp-le.cdn.foob.ar"}},
		{Name: "www-examp-le.cdn.foob.ar", Type: TypeA, Class: ClassIN, TTL: 60, Data: A{Addr: mustAddr("10.0.0.2")}},
	}
	m.Authority = []RR{
		{Name: "foob.ar", Type: TypeNS, Class: ClassIN, TTL: 3600, Data: NS{Host: "ns1.foob.ar"}},
		{Name: "foob.ar", Type: TypeNS, Class: ClassIN, TTL: 3600, Data: NS{Host: "ns2.foob.ar"}},
	}
	m.Extra = []RR{
		{Name: "ns1.foob.ar", Type: TypeA, Class: ClassIN, TTL: 3600, Data: A{Addr: mustAddr("10.0.0.53")}},
		{Name: "ns2.foob.ar", Type: TypeA, Class: ClassIN, TTL: 3600, Data: A{Addr: mustAddr("10.0.0.54")}},
	}
	return m
}

func BenchmarkAblationNameCompressionOn(b *testing.B) {
	m := benchMessage()
	wire, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

// packUncompressed encodes the message with compression disabled by
// passing a nil compression map through a private pack path.
func packUncompressed(m *Message) ([]byte, error) {
	var buf []byte
	var hdr [12]byte
	hdr[0], hdr[1] = byte(m.ID>>8), byte(m.ID)
	flags := m.Flags.pack()
	hdr[2], hdr[3] = byte(flags>>8), byte(flags)
	counts := []int{len(m.Questions), len(m.Answers), len(m.Authority), len(m.Extra)}
	for i, n := range counts {
		hdr[4+2*i], hdr[5+2*i] = byte(n>>8), byte(n)
	}
	buf = append(buf, hdr[:]...)
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, 0, q.Name, nil); err != nil {
			return nil, err
		}
		buf = be16(buf, uint16(q.Type))
		buf = be16(buf, uint16(q.Class))
	}
	comp := compMap{off: nil} // nil map: appendName never compresses
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Extra} {
		for _, rr := range sec {
			if buf, err = appendRR(buf, rr, &comp); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func BenchmarkAblationNameCompressionOff(b *testing.B) {
	m := benchMessage()
	wire, err := packUncompressed(m)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packUncompressed(m); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUncompressedLargerButDecodable(t *testing.T) {
	m := benchMessage()
	comp, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := packUncompressed(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) <= len(comp) {
		t.Errorf("compression ineffective: %d vs %d bytes", len(comp), len(flat))
	}
	got, err := Unpack(flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 2 || len(got.Extra) != 2 {
		t.Errorf("uncompressed decode mismatch: %+v", got)
	}
}

func BenchmarkUnpack(b *testing.B) {
	wire, err := benchMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackQuery(b *testing.B) {
	q := NewQuery(9, "some-domain.com", TypeA)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}
