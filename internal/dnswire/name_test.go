package dnswire

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{"", ".", false},
		{".", ".", false},
		{"example.com", "example.com", false},
		{"Example.COM", "example.com", false},
		{"example.com.", "example.com", false},
		{"WWW.Example.Com.", "www.example.com", false},
		{"a-b_c.example", "a-b_c.example", false},
		{"*.example.com", "*.example.com", false},
		{"123.example", "123.example", false},
		{"ex..com", "", true},
		{".com", "", true},
		{"bad char.com", "", true},
		{"per%cent.com", "", true},
		{strings.Repeat("a", 64) + ".com", "", true},
		{strings.Repeat("a", 63) + ".com", strings.Repeat("a", 63) + ".com", false},
	}
	for _, c := range cases {
		got, err := CanonicalName(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("CanonicalName(%q) = %q, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("CanonicalName(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCanonicalNameTotalLength(t *testing.T) {
	// 4 labels of 63 bytes = 4*64+1 = 257 wire octets: too long.
	l := strings.Repeat("a", 63)
	long := strings.Join([]string{l, l, l, l}, ".")
	if _, err := CanonicalName(long); err == nil {
		t.Fatalf("expected length error for %d-octet name", len(long)+2)
	}
	// 3 labels of 63 plus one of 61 = 255 octets exactly: allowed.
	ok := strings.Join([]string{l, l, l, strings.Repeat("a", 61)}, ".")
	if _, err := CanonicalName(ok); err != nil {
		t.Fatalf("255-octet name rejected: %v", err)
	}
}

func TestWildcardOnlyLeading(t *testing.T) {
	if _, err := CanonicalName("a.*.com"); err == nil {
		t.Error("interior wildcard label accepted")
	}
	if _, err := CanonicalName("a*.com"); err == nil {
		t.Error("embedded asterisk accepted")
	}
}

func TestLabelsAndParent(t *testing.T) {
	if got := Labels("www.example.com"); len(got) != 3 || got[0] != "www" || got[2] != "com" {
		t.Errorf("Labels = %v", got)
	}
	if Labels(".") != nil {
		t.Error("Labels(root) should be nil")
	}
	if got := Parent("www.example.com"); got != "example.com" {
		t.Errorf("Parent = %q", got)
	}
	if got := Parent("com"); got != "." {
		t.Errorf("Parent(com) = %q", got)
	}
	if got := Parent("."); got != "." {
		t.Errorf("Parent(.) = %q", got)
	}
	if CountLabels("a.b.c") != 3 || CountLabels(".") != 0 {
		t.Error("CountLabels wrong")
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"www.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", ".", true},
		{"badexample.com", "example.com", false},
		{"example.com", "www.example.com", false},
		{"com", ".", true},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestNameWireRoundTrip(t *testing.T) {
	names := []string{".", "com", "example.com", "www.example.com", "a.b.c.d.e.f"}
	for _, n := range names {
		buf, err := appendName(nil, 0, n, nil)
		if err != nil {
			t.Fatalf("appendName(%q): %v", n, err)
		}
		got, off, err := unpackName(buf, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", n, err)
		}
		if got != n {
			t.Errorf("round trip %q -> %q", n, got)
		}
		if off != len(buf) {
			t.Errorf("offset after %q = %d, want %d", n, off, len(buf))
		}
	}
}

func TestNameCompressionRoundTrip(t *testing.T) {
	comp := map[string]int{}
	var buf []byte
	var err error
	names := []string{"www.example.com", "example.com", "mail.example.com", "example.com"}
	var offs []int
	for _, n := range names {
		offs = append(offs, len(buf))
		if buf, err = appendName(buf, 0, n, comp); err != nil {
			t.Fatal(err)
		}
	}
	// Second "example.com" should be a bare 2-byte pointer.
	if got := len(buf) - offs[3]; got != 2 {
		t.Errorf("compressed repeat took %d bytes, want 2", got)
	}
	for i, n := range names {
		got, _, err := unpackName(buf, offs[i])
		if err != nil {
			t.Fatalf("unpack %q: %v", n, err)
		}
		if got != n {
			t.Errorf("unpack at %d = %q, want %q", offs[i], got, n)
		}
	}
}

func TestUnpackNameRejectsLoops(t *testing.T) {
	// Pointer at offset 0 pointing to itself is forward-or-equal: rejected.
	if _, _, err := unpackName([]byte{0xC0, 0x00}, 0); err == nil {
		t.Error("self-pointer accepted")
	}
	// Two pointers pointing at each other.
	msg := []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := unpackName(msg, 2); err == nil {
		t.Error("pointer loop accepted")
	}
	// Truncated label.
	if _, _, err := unpackName([]byte{5, 'a', 'b'}, 0); err == nil {
		t.Error("truncated label accepted")
	}
	// Reserved label type.
	if _, _, err := unpackName([]byte{0x80, 0x00}, 0); err == nil {
		t.Error("reserved label type accepted")
	}
}

// randomName generates a syntactically valid canonical name.
func randomName(r *rand.Rand) string {
	const chars = "abcdefghijklmnopqrstuvwxyz0123456789-_"
	n := 1 + r.Intn(4)
	labels := make([]string, n)
	for i := range labels {
		l := 1 + r.Intn(12)
		b := make([]byte, l)
		for j := range b {
			b[j] = chars[r.Intn(len(chars)-2)] // avoid '-'/'_' at random spots being an issue; they are legal anyway
		}
		labels[i] = string(b)
	}
	return strings.Join(labels, ".")
}

func TestQuickNameRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		buf, err := appendName(nil, 0, n, nil)
		if err != nil {
			return false
		}
		got, _, err := unpackName(buf, 0)
		return err == nil && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		c1, err := CanonicalName(n)
		if err != nil {
			return false
		}
		c2, err := CanonicalName(c1)
		return err == nil && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
