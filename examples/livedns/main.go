// livedns materialises one day of the simulated Internet as real
// authoritative DNS servers over kernel UDP sockets (loopback, with NAT
// translation of the simulated address space), then resolves a protected
// domain with the measuring resolver: root referral → TLD referral →
// authoritative answer, CNAME chased across zones into the DPS — every
// datagram a genuine RFC 1035 message through the kernel.
//
//	go run ./examples/livedns
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"strings"

	"dpsadopt/internal/core"
	"dpsadopt/internal/dnsclient"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/pfx2as"
	"dpsadopt/internal/transport"
	"dpsadopt/internal/worldsim"
)

func main() {
	world, err := worldsim.New(worldsim.DefaultConfig(400_000))
	if err != nil {
		log.Fatal(err)
	}
	day := world.Cfg.Window.Start + 30

	// Pick an Incapsula CNAME customer to showcase CNAME-based diversion.
	var target *worldsim.Domain
	for _, d := range world.Domains {
		if c := d.Cust; c != nil && c.Provider == worldsim.Incapsula &&
			c.Profile == worldsim.ProfileCNAME && !c.OnDemand && d.Life.Contains(day) {
			target = d
			break
		}
	}
	if target == nil {
		log.Fatal("no Incapsula CNAME customer in this world")
	}

	network := transport.NewMappedUDP()
	wire, err := world.BuildWire(day, network)
	if err != nil {
		log.Fatal(err)
	}
	defer wire.Close()
	fmt.Printf("simulated Internet for %s is live; root server at %v\n\n", day, wire.Roots[0])

	resolver, err := dnsclient.NewResolver(network, netip.MustParseAddr("10.250.0.1"), wire.Roots, 42)
	if err != nil {
		log.Fatal(err)
	}
	defer resolver.Close()

	name := "www." + target.Name
	res, err := resolver.Resolve(context.Background(), name, dnswire.TypeA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(";; %s A -> %s (%d queries over UDP)\n", name, res.RCode, res.Queries)
	for _, rr := range res.Records {
		fmt.Println("  ", rr)
	}

	nsRes, err := resolver.Resolve(context.Background(), target.Name, dnswire.TypeNS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(";; %s NS -> %s\n", target.Name, nsRes.RCode)
	for _, rr := range nsRes.Records {
		fmt.Println("  ", rr)
	}

	// Now apply the paper's detection to what we just resolved.
	refs := core.MustGroundTruth()
	entries, err := pfx2as.Parse(strings.NewReader(world.RIBForDay(day).Snapshot()))
	if err != nil {
		log.Fatal(err)
	}
	table := pfx2as.NewWalk(entries)
	fmt.Println("\ndetection:")
	for _, cname := range res.CNAMEs() {
		if p, ok := refs.MatchCNAME(cname); ok {
			fmt.Printf("  CNAME %s -> SLD %s -> %s\n", cname, core.SLD(cname), refs.Providers[p].Name)
		}
	}
	for _, addr := range res.Addrs() {
		if origins, ok := table.Lookup(addr); ok {
			for _, o := range origins {
				if p, ok := refs.MatchASN(o); ok {
					fmt.Printf("  address %v -> AS%d -> %s\n", addr, o, refs.Providers[p].Name)
				}
			}
		}
	}
}
