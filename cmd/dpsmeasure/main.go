// Command dpsmeasure runs the active DNS measurement pipeline by itself —
// the paper's Figure 1 system — and reports what it collected, without
// the downstream analysis. It demonstrates both fidelity modes: the
// default in-process derivation and, with -mode wire, full resolution of
// every query through authoritative servers over the in-memory network.
//
// Progress is reported through the structured logger (one summary line
// per day with row/query counts and latency quantiles); -quiet
// suppresses it. With -metrics-addr the process serves live
// Prometheus-text /metrics (including the go_*/process_* runtime
// gauges), expvar /debug/vars, pprof profiles, the /debug/contention
// JSON summary and — when tracing is on — /debug/traces for the duration
// of the run, and stays up after the run finishes until interrupted so
// the final counters can be scraped. -prof-mutex and -prof-block arm the
// runtime's contention profilers, which feed both /debug/pprof/{mutex,
// block} and /debug/contention.
//
// Tracing: -trace-out enables request-scoped tracing and names the output
// base; the run writes <base>.json (Chrome trace_event, loadable in
// about:tracing and Perfetto) and <base>.jsonl (one span per line).
// -trace-sample sets the per-domain sampling rate; -trace-slow logs every
// span at or above the given duration with its full path.
//
// SIGINT/SIGTERM cancel the run gracefully: the in-flight day stops
// between domains, partial traces and committed store partitions are
// flushed, the usual summary is printed, and the process exits 130.
//
// Fault injection: with -mode wire, -fault-scenario names a chaos
// scenario (see -help for the list) injected into every measured day,
// and -fault-seed pins the exact fault pattern — the same scenario and
// seed reproduce the same losses, byte for byte. Each day's network
// accounting (queries sent, lost, resolutions given up) is logged, and
// days whose failure rate exceeds the threshold are committed as
// degraded; the run ends with a per-day degraded ledger.
//
// Coordination: -coord-workers N > 0 replaces the classic day loop with
// the internal/coord plane — (source, day) partitions leased to N
// workers with crash-safe, exactly-once commits — and makes the
// coordination chaos scenarios (worker-crash, coord-restart, torn-write,
// ...) usable without -mode wire; -coord-dir persists the journal and
// spools so an interrupted run resumes where it stopped. cmd/dpscoord is
// the same plane as a standalone tool with ledger output.
//
// Usage:
//
//	dpsmeasure [-scale 100000] [-days 3] [-mode direct|wire] [-workers N]
//	           [-coord-workers 3] [-coord-dir coordrun]
//	           [-fault-scenario flaky-1pct] [-fault-seed 7] [-wire-timeout 100]
//	           [-metrics-addr :9090] [-prof-mutex 5] [-prof-block 0]
//	           [-quiet] [-log-json] [-v]
//	           [-trace-out traces] [-trace-sample 0.01] [-trace-slow 250ms]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dpsadopt/internal/chaos"
	"dpsadopt/internal/coord"
	"dpsadopt/internal/experiment"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/trace"
	"dpsadopt/internal/transport"
	"dpsadopt/internal/worldsim"
)

func main() {
	var (
		scale       = flag.Int("scale", 100_000, "world scale divisor")
		days        = flag.Int("days", 3, "days to measure")
		mode        = flag.String("mode", "direct", "direct or wire")
		workers     = flag.Int("workers", 4, "measurement workers")
		verbose     = flag.Bool("v", false, "print sample rows")
		out         = flag.String("out", "", "write the dataset to this .dpsa file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/traces on this address")
		quiet       = flag.Bool("quiet", false, "suppress progress logging (warnings still shown)")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON")
		traceOut    = flag.String("trace-out", "", "enable tracing; write <base>.json (Chrome trace_event) and <base>.jsonl")
		traceSample = flag.Float64("trace-sample", 0.01, "per-domain trace sampling rate in [0,1]")
		traceSlow   = flag.Duration("trace-slow", 0, "log spans at or above this duration with their full path (0 = off)")

		faultScenario = flag.String("fault-scenario", "",
			"chaos scenario injected into wire days ("+strings.Join(chaos.ScenarioNames(), ", ")+"); empty = fault-free")
		faultSeed   = flag.Int64("fault-seed", 0, "seed pinning the fault pattern; same scenario+seed = same faults")
		wireTimeout = flag.Int("wire-timeout", 0, "wire-mode resolver timeout in ms (0 = dnsclient default; lower it under chaos so losses cost ms, not s)")

		coordWorkers = flag.Int("coord-workers", 0, "run the days through the coordination plane with this many leased workers (0 = classic sequential day loop)")
		coordDir     = flag.String("coord-dir", "", "coordination directory for journal + spools (default: a temp dir); rerun with the same dir to resume")

		profMutex = flag.Int("prof-mutex", 0, "mutex profiling fraction (runtime.SetMutexProfileFraction; 0 = off); served at /debug/pprof/mutex and /debug/contention")
		profBlock = flag.Int("prof-block", 0, "block profiling rate in ns (runtime.SetBlockProfileRate; 0 = off); served at /debug/pprof/block and /debug/contention")
	)
	flag.Parse()
	obs.SetContentionProfiling(*profMutex, *profBlock)

	if *logJSON {
		obs.SetLogger(obs.NewLogger(os.Stderr, slog.LevelInfo, true))
	}
	if *quiet {
		obs.SetQuiet()
	}
	log := obs.Logger()

	cfg := measure.Config{Workers: *workers, Timeout: *wireTimeout}
	switch *mode {
	case "direct":
		cfg.Mode = measure.ModeDirect
	case "wire":
		cfg.Mode = measure.ModeWire
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	var faultCfg chaos.Config
	if *faultScenario != "" {
		fc, err := chaos.Scenario(*faultScenario)
		if err != nil {
			fatal(err)
		}
		// Network/server faults need wire days (only they have datagrams
		// to lose); coordination-plane faults need the coordination
		// plane. A scenario may carry either or both.
		if (fc.Active() || fc.ServerActive()) && cfg.Mode != measure.ModeWire {
			fatal(fmt.Errorf("-fault-scenario %s requires -mode wire: only wire days have datagrams to lose", *faultScenario))
		}
		if fc.CoordActive() && *coordWorkers <= 0 {
			fatal(fmt.Errorf("-fault-scenario %s injects coordination-plane faults: set -coord-workers (or use dpscoord)", *faultScenario))
		}
		faultCfg = fc
		// Mirror experiment.Runner's chaos wiring: a fresh day-seeded
		// network wrapped with the fault injector, roots protected so the
		// namespace stays reachable at its first hop, and the server-side
		// injector installed on every authoritative. Per-day seeds keep
		// the whole run a pure function of (scenario, -fault-seed).
		daySeed := func(day simtime.Day) int64 { return *faultSeed + int64(day)*1_000_003 }
		cfg.WireNetwork = func(day simtime.Day) transport.Network {
			var n transport.Network = transport.NewMem(int64(day) ^ 0x3f3f)
			if faultCfg.Active() {
				n = chaos.Wrap(n, faultCfg, daySeed(day))
			}
			return n
		}
		cfg.OnWire = func(day simtime.Day, wire *worldsim.Wire, network transport.Network) {
			if cn, ok := network.(*chaos.Network); ok {
				for _, root := range wire.Roots {
					cn.Protect(root.Addr())
				}
			}
			if faultCfg.ServerActive() {
				wire.SetFaults(chaos.NewServerFaults(faultCfg, daySeed(day)))
			}
		}
		log.Info("fault injection armed", "scenario", *faultScenario, "seed", *faultSeed)
	}

	tracer, err := buildTracer(*traceOut, *traceSample, *traceSlow)
	if err != nil {
		fatal(err)
	}
	if tracer != nil {
		trace.SetDefault(tracer)
		obs.Handle("/debug/traces", trace.Handler(tracer))
		log.Info("tracing enabled",
			"sample", *traceSample, "slow", traceSlow.String(), "out", *traceOut)
	}

	reg := obs.Default()
	if *metricsAddr != "" {
		// Scrapers get the Go runtime's view too: GC pauses, scheduling
		// latency, heap size, mutex wait (go_* / process_* gauges).
		rc := obs.StartRuntimeCollector(reg, 0)
		defer rc.Close()
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		// Drain instead of tearing the socket down: a scrape racing the
		// exit still collects the final counters.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				_ = srv.Close()
			}
		}()
		log.Info("metrics listening", "addr", srv.Addr,
			"endpoints", "/metrics /debug/vars /debug/pprof/ /debug/traces")
	}

	// SIGINT/SIGTERM cancel the run: the in-flight day stops between
	// domains, traces flush, and the summary below still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w, err := worldsim.New(worldsim.DefaultConfig(*scale))
	if err != nil {
		fatal(err)
	}
	log.Info("world built", "stats", w.Stats())

	s := store.New()
	p := measure.New(w, s, cfg)
	start := time.Now()
	prev := reg.Snapshot()
	interrupted := false
	var ledger []experiment.DayAccounting
	if *coordWorkers > 0 {
		interrupted = runCoordinated(ctx, w, s, cfg, *days, *coordWorkers, *coordDir, faultCfg, uint64(*faultSeed))
	}
	for d := 0; *coordWorkers == 0 && d < *days; d++ {
		day := w.Cfg.Window.Start + simtime.Day(d)
		t0 := time.Now()
		dctx, sp := tracer.StartRoot(ctx, "experiment.day",
			trace.Str("day", day.String()),
			trace.Int("index", int64(d+1)), trace.Int("total", int64(*days)))
		err := p.RunDay(dctx, day)
		sp.End()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				log.Warn("run interrupted; flushing partial results", "day", day.String())
				break
			}
			fatal(err)
		}
		snap := reg.Snapshot()
		lat := snap.Histogram("dns_client_query_seconds")
		attrs := []any{
			"day", day.String(),
			"domains", snap.Counter("measure_domains_total") - prev.Counter("measure_domains_total"),
			"rows", snap.Counter("store_rows_total") - prev.Counter("store_rows_total"),
			"queries", snap.Counter("dns_client_queries_total") - prev.Counter("dns_client_queries_total"),
			"p50_ms", fmt.Sprintf("%.3f", lat.P50*1000),
			"p99_ms", fmt.Sprintf("%.3f", lat.P99*1000),
			"errors", snap.Counter("dns_client_errors_total") - prev.Counter("dns_client_errors_total"),
			"elapsed", time.Since(t0).Round(time.Millisecond).String(),
		}
		if cfg.Mode == measure.ModeWire {
			net := p.LastNetStats()
			degraded := *faultScenario != "" && net.FailureRate() > experiment.DefaultFailureThreshold
			ledger = append(ledger, experiment.DayAccounting{
				Day: day, Queries: net.Queries, Lost: net.Lost,
				Resolutions: net.Resolutions, GaveUp: net.GaveUp,
				FailureRate: net.FailureRate(), Degraded: degraded,
			})
			attrs = append(attrs,
				"lost", net.Lost,
				"gave_up", net.GaveUp,
				"failure_rate", fmt.Sprintf("%.4f", net.FailureRate()),
				"degraded", degraded,
			)
		}
		log.Info("day complete", attrs...)
		prev = snap
		if ctx.Err() != nil {
			interrupted = true
			break
		}
	}
	if err := tracer.Close(); err != nil {
		log.Warn("trace flush failed", "err", err)
	} else if tracer != nil {
		log.Info("traces written", "out", *traceOut, "recent", tracer.Ring().Len())
	}
	log.Info("run complete",
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"wire_queries", p.QueriesSent(),
		"interrupted", interrupted,
	)

	// The per-day network ledger always flushes — on interrupts too, so
	// an aborted run still shows which committed days were degraded.
	if len(ledger) > 0 && !*quiet {
		scenario := *faultScenario
		if scenario == "" {
			scenario = "none"
		}
		fmt.Printf("\ndegraded-day ledger (scenario %s, seed %d):\n", scenario, *faultSeed)
		fmt.Printf("%-12s %10s %8s %8s %8s %8s\n", "day", "queries", "lost", "gaveup", "rate", "status")
		for _, a := range ledger {
			status := "ok"
			if a.Degraded {
				status = "DEGRADED"
			}
			fmt.Printf("%-12s %10d %8d %8d %8.4f %8s\n", a.Day, a.Queries, a.Lost, a.GaveUp, a.FailureRate, status)
		}
	}

	if !*quiet {
		fmt.Printf("\n%-8s %6s %10s %12s %12s\n", "source", "days", "#SLDs", "#DPs", "size")
		for _, src := range s.Sources() {
			st := s.SourceStats(src)
			fmt.Printf("%-8s %6d %10d %12d %11dB\n", src, st.Days, st.UniqueSLDs, st.DataPoints, st.CompressedBytes)
		}
	}

	if *out != "" {
		if err := s.Save(*out); err != nil {
			fatal(err)
		}
		log.Info("dataset written", "path", *out)
	}

	if *verbose && !*quiet {
		day := w.Cfg.Window.Start
		fmt.Printf("\nsample rows (com, %s):\n", day)
		n := 0
		s.ForEachRow("com", day, func(r store.Row) {
			if n >= 12 {
				return
			}
			n++
			if r.Str != "" {
				fmt.Printf("  %-20s %-10s %s\n", r.Domain, r.Kind, r.Str)
			} else {
				fmt.Printf("  %-20s %-10s %-15s AS%v\n", r.Domain, r.Kind, r.Addr, r.ASNs)
			}
		})
	}

	if interrupted {
		os.Exit(130) // 128 + SIGINT, the conventional interrupted exit
	}

	if *metricsAddr != "" {
		log.Info("run finished; still serving metrics, Ctrl-C to exit")
		<-ctx.Done()
	}
}

// buildTracer assembles the run's tracer from the -trace-* flags.
// Tracing is enabled by -trace-out (exports + ring) or by -trace-slow
// alone (slow-span logging and /debug/traces, no files).
func buildTracer(outBase string, sample float64, slow time.Duration) (*trace.Tracer, error) {
	if outBase == "" && slow == 0 {
		return nil, nil
	}
	cfg := trace.Config{Sample: sample, Slow: slow, RingSize: 128}
	if outBase != "" {
		base := strings.TrimSuffix(outBase, ".json")
		chrome, err := trace.NewChromeFile(base + ".json")
		if err != nil {
			return nil, err
		}
		jf, err := os.Create(base + ".jsonl")
		if err != nil {
			chrome.Close()
			return nil, err
		}
		cfg.Exporters = []trace.Exporter{chrome, trace.NewJSONL(jf)}
	}
	return trace.New(cfg), nil
}

// runCoordinated measures the day range through the coordination plane
// instead of the sequential day loop: (source, day) partitions are
// leased to coordWorkers workers, committed spools are assembled back
// into s, and chaos-injected coordinator crashes are survived by the
// journal-replay driver loop. Returns whether the run was interrupted.
func runCoordinated(ctx context.Context, w *worldsim.World, s *store.Store, mcfg measure.Config, days, coordWorkers int, dir string, faultCfg chaos.Config, seed uint64) bool {
	log := obs.Logger()
	if dir == "" {
		td, err := os.MkdirTemp("", "dpsmeasure-coord-*")
		if err != nil {
			fatal(err)
		}
		dir = td
	}
	probe := measure.New(w, store.New(), measure.Config{Mode: measure.ModeDirect, Workers: 1})
	var parts []coord.Partition
	for d := 0; d < days; d++ {
		day := w.Cfg.Window.Start + simtime.Day(d)
		for _, src := range probe.DaySources(day) {
			parts = append(parts, coord.Partition{Source: src, Day: day})
		}
	}
	ccfg := coord.Config{
		Dir:     dir,
		Workers: coordWorkers,
		Faults:  chaos.NewCoordFaults(faultCfg, seed),
		Seed:    seed,
		Work: func(ctx context.Context, p coord.Partition, attempt int) (*store.Store, error) {
			spoolStore := store.New()
			pipe := measure.New(w, spoolStore, mcfg)
			if err := pipe.RunPartition(ctx, p.Source, p.Day); err != nil {
				return nil, err
			}
			return spoolStore, nil
		},
	}
	log.Info("coordination plane armed", "workers", coordWorkers, "partitions", len(parts), "dir", dir)
	var (
		c   *coord.Coordinator
		err error
	)
	for {
		c, err = coord.New(ccfg, parts)
		if err != nil {
			fatal(err)
		}
		err = c.Run(ctx)
		if errors.Is(err, coord.ErrRestart) {
			log.Warn("coordinator crashed (chaos); replaying journal")
			continue
		}
		break
	}
	stats := c.Stats()
	interrupted := err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil)
	if err != nil && !interrupted {
		fatal(err)
	}
	assembled, damaged, aerr := c.Assemble()
	if aerr != nil {
		fatal(aerr)
	}
	for _, d := range damaged {
		log.Warn("spool torn at rest; partition quarantined",
			"partition", d.Partition.String(), "quarantine", d.QuarantinePath, "err", d.Err)
	}
	s.Absorb(assembled)
	log.Info("coordinated run assembled",
		"partitions", stats.Partitions, "committed", stats.Committed,
		"failed", stats.Failed, "quarantined", len(damaged), "interrupted", interrupted)
	return interrupted
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsmeasure:", err)
	os.Exit(1)
}
