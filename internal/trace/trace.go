// Package trace is the request-scoped tracing substrate for the
// measurement pipeline: dependency-free spans (trace/span IDs, parent
// links, wall-clock start and duration, key-value attributes) carried
// through the stages of the paper's Fig 1 system by context.Context.
//
// Aggregate metrics (internal/obs) say *how much* and *how fast*; traces
// say *why this one was slow*. One trace covers one measurement day:
// the experiment layer opens an `experiment.day` root span, the pipeline
// nests `measure.stage1/2/3` under it, the resolver nests
// `dnsclient.resolve` per sampled domain, and each datagram exchange
// nests a `transport.send` (or `transport.tcp`) leaf. Server-side,
// dnsserver opens small `dnsserver.handle` root traces for the same
// sampled names, so client and server views of a query correlate.
//
// Sampling is per-domain and deterministic: a domain name hashes to a
// point in [0,1) and is traced iff it falls below the configured rate,
// so the same domains are traced on every day (and on the server side),
// and an unsampled path costs one context lookup plus one hash — no
// allocation, no lock. Completed traces land in a bounded in-memory ring
// (served live by /debug/traces), optionally stream to JSONL, and
// accumulate into a Chrome trace_event file loadable in about:tracing
// and Perfetto. Spans slower than a configurable threshold are reported
// through the structured logger with their full root-to-leaf path.
package trace

import (
	"context"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"dpsadopt/internal/obs"
)

// TraceID identifies one trace (one measured day, or one server-side
// query). The zero value is invalid.
type TraceID uint64

// String renders the ID as 16 hex digits, the form used in exports,
// exemplars and logs.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// SpanID identifies one span within a trace. The zero value means "no
// parent" on a root span.
type SpanID uint64

// String renders the ID as 16 hex digits.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// Attr is one key-value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: fmt.Sprintf("%d", value)}
}

// SpanRecord is a completed span as stored in the ring and exports.
type SpanRecord struct {
	Trace    TraceID       `json:"-"`
	ID       SpanID        `json:"-"`
	Parent   SpanID        `json:"-"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Trace is one completed trace: its spans in end order (the root span,
// which ends last, is the final element).
type Trace struct {
	ID    TraceID
	Spans []SpanRecord
}

// Root returns the root span record (zero Parent), or a zero record if
// the trace is empty.
func (t *Trace) Root() SpanRecord {
	for i := len(t.Spans) - 1; i >= 0; i-- {
		if t.Spans[i].Parent == 0 {
			return t.Spans[i]
		}
	}
	return SpanRecord{}
}

// Span is a live span. A nil *Span is a valid no-op span: every method
// is nil-safe, so unsampled code paths carry nil through the context and
// pay nothing.
type Span struct {
	tr  *Tracer
	buf *traceBuf
	rec SpanRecord

	mu    sync.Mutex // guards rec.Attrs (workers may annotate concurrently)
	ended atomic.Bool
}

// traceBuf accumulates the finished spans of one in-flight trace.
type traceBuf struct {
	tr *Tracer
	id TraceID

	mu      sync.Mutex
	spans   []SpanRecord
	flushed bool
}

// TraceID returns the span's trace ID, or 0 for a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// Tracer returns the owning tracer (nil for a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
	s.mu.Unlock()
}

// End finishes the span, recording its duration. Ending the root span
// completes the trace: it is pushed to the ring and exporters, and slow
// spans are logged. End is idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.rec.Duration = time.Since(s.rec.Start)
	s.buf.add(s.rec)
	if s.rec.Parent == 0 {
		s.buf.flush()
	}
}

func (b *traceBuf) add(rec SpanRecord) {
	b.mu.Lock()
	if !b.flushed {
		b.spans = append(b.spans, rec)
	}
	b.mu.Unlock()
}

// flush hands the completed trace to the tracer. Spans still open when
// the root ends (there should be none in a well-nested pipeline) are
// dropped.
func (b *traceBuf) flush() {
	b.mu.Lock()
	if b.flushed {
		b.mu.Unlock()
		return
	}
	b.flushed = true
	spans := b.spans
	b.spans = nil
	b.mu.Unlock()
	b.tr.complete(&Trace{ID: b.id, Spans: spans})
}

// Config tunes a Tracer.
type Config struct {
	// Sample is the per-domain sampling rate in [0,1]. Root spans started
	// explicitly (per-day spans) are always recorded; SampleName gates
	// the per-domain subtrees and server-side traces.
	Sample float64
	// Slow, when positive, logs every completed span whose duration
	// meets or exceeds it, with the full span path.
	Slow time.Duration
	// RingSize bounds the in-memory ring of recent traces (default 64).
	RingSize int
	// Exporters receive every completed trace.
	Exporters []Exporter
}

// Tracer creates and collects traces. All methods are safe for
// concurrent use; a nil *Tracer is a valid disabled tracer.
type Tracer struct {
	sample    float64
	slow      time.Duration
	ring      *Ring
	exporters []Exporter
	seed      maphash.Seed
	ids       atomic.Uint64

	mu     sync.Mutex // serializes exporter writes and Close
	closed bool
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	return &Tracer{
		sample:    cfg.Sample,
		slow:      cfg.Slow,
		ring:      NewRing(cfg.RingSize),
		exporters: cfg.Exporters,
		seed:      maphash.MakeSeed(),
	}
}

// defaultTracer is the process-wide tracer used by layers that start
// root spans without a caller-supplied context (dnsserver). nil = off.
var defaultTracer atomic.Pointer[Tracer]

// SetDefault installs the process-wide tracer (nil disables it).
func SetDefault(t *Tracer) { defaultTracer.Store(t) }

// Default returns the process-wide tracer, possibly nil.
func Default() *Tracer { return defaultTracer.Load() }

// Ring returns the tracer's ring of recent traces (nil for nil tracer).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// nextID yields a process-unique non-zero ID. IDs are sequential from a
// random-ish base derived from the tracer seed; determinism across runs
// is not needed (the run's outputs embed whatever IDs were assigned).
func (t *Tracer) nextID() uint64 {
	n := t.ids.Add(1)
	var h maphash.Hash
	h.SetSeed(t.seed)
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(n >> (8 * i))
	}
	h.Write(b[:])
	id := h.Sum64()
	if id == 0 {
		id = n
	}
	return id
}

// SampleName reports whether the given name (a domain, typically) falls
// inside the sampling rate. Deterministic per tracer instance: the same
// name gives the same answer for the tracer's lifetime, so a sampled
// domain is traced on every day of a run. Nil-safe (false).
func (t *Tracer) SampleName(name string) bool {
	if t == nil || t.sample <= 0 {
		return false
	}
	if t.sample >= 1 {
		return true
	}
	var h maphash.Hash
	h.SetSeed(t.seed)
	h.WriteString(name)
	// Map the hash to [0,1) and compare against the rate.
	return float64(h.Sum64()>>11)/float64(1<<53) < t.sample
}

// Enabled reports whether the tracer records anything at all (nil-safe).
func (t *Tracer) Enabled() bool { return t != nil }

// StartRoot begins a new trace with a root span and returns a context
// carrying it. On a nil tracer it returns ctx and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	buf := &traceBuf{tr: t, id: TraceID(t.nextID())}
	sp := &Span{
		tr:  t,
		buf: buf,
		rec: SpanRecord{
			Trace: buf.id,
			ID:    SpanID(t.nextID()),
			Name:  name,
			Start: time.Now(),
			Attrs: attrs,
		},
	}
	return ContextWithSpan(ctx, sp), sp
}

// complete files a finished trace: ring, exporters, slow-span log.
func (t *Tracer) complete(tr *Trace) {
	if len(tr.Spans) == 0 {
		return
	}
	t.ring.Add(tr)
	t.mu.Lock()
	if !t.closed {
		for _, e := range t.exporters {
			e.Export(tr)
		}
	}
	t.mu.Unlock()
	if t.slow > 0 {
		t.logSlow(tr)
	}
}

// logSlow reports spans at or above the slow threshold with their full
// root-to-leaf path.
func (t *Tracer) logSlow(tr *Trace) {
	byID := make(map[SpanID]*SpanRecord, len(tr.Spans))
	for i := range tr.Spans {
		byID[tr.Spans[i].ID] = &tr.Spans[i]
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.Duration < t.slow {
			continue
		}
		path := sp.Name
		for p := sp.Parent; p != 0; {
			parent, ok := byID[p]
			if !ok {
				break
			}
			path = parent.Name + " > " + path
			p = parent.Parent
		}
		obs.Logger().Warn("slow span",
			"trace", sp.Trace.String(),
			"span", sp.ID.String(),
			"path", path,
			"duration", sp.Duration.Round(time.Microsecond).String(),
			"attrs", attrString(sp.Attrs),
		)
	}
}

func attrString(attrs []Attr) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += " "
		}
		out += a.Key + "=" + a.Value
	}
	return out
}

// Close flushes and closes every exporter. The tracer stops exporting
// afterwards (ring and sampling keep working, so a still-draining
// pipeline cannot write to closed files).
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var first error
	for _, e := range t.exporters {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---- context propagation ----

type ctxKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartSpan begins a child of the context's active span. With no active
// span (or a nil tracer) it returns ctx unchanged and a nil span, so
// callers need no conditional: Start, annotate, End.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{
		tr:  parent.tr,
		buf: parent.buf,
		rec: SpanRecord{
			Trace:  parent.rec.Trace,
			ID:     SpanID(parent.tr.nextID()),
			Parent: parent.rec.ID,
			Name:   name,
			Start:  time.Now(),
			Attrs:  attrs,
		},
	}
	return ContextWithSpan(ctx, sp), sp
}

// ForDomain applies per-domain sampling: if the context carries an
// active span but name falls outside the sampling rate, the returned
// context has the span suppressed, so the domain's subtree (resolver and
// transport spans) is not recorded. The day-level spans are unaffected.
func ForDomain(ctx context.Context, name string) context.Context {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return ctx
	}
	if sp.tr.SampleName(name) {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, (*Span)(nil))
}

// ---- ring of recent traces ----

// Ring is a bounded, concurrency-safe ring of recently completed traces.
type Ring struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewRing creates a ring holding up to size traces.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = 1
	}
	return &Ring{buf: make([]*Trace, size)}
}

// Add inserts a completed trace, evicting the oldest when full.
func (r *Ring) Add(t *Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Recent returns up to n traces, newest first. n <= 0 returns all held.
func (r *Ring) Recent(n int) []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len returns the number of traces currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
