package main

// The scale sweep (-scalesweep) is the out-of-core evidence harness: for
// each world scale divisor it measures one dataset to disk, then builds
// the serving index twice from that same file — fully loaded
// (store.Load + api.NewIndex) and streaming (store.Open +
// api.NewIndexReader) — recording wall time, partition throughput, and
// peak heap/RSS for each path, plus a structural parity check between
// the two indexes. Results land in BENCH_scale.json (benchfmt
// ScaleSchema): the streaming path must hold peak memory at a fraction
// of the full load without giving up throughput, and the cells show the
// curve as the scale divisor falls toward the paper's 1:1.

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"slices"

	"dpsadopt/internal/api"
	"dpsadopt/internal/benchfmt"
	"dpsadopt/internal/core"
	"dpsadopt/internal/store"
)

// runScaleSweep drives one cell per scale divisor and writes the doc.
func runScaleSweep(scales []int, days int, out string, log *slog.Logger) error {
	doc := &benchfmt.ScaleDoc{
		Bench:     "scale",
		Schema:    benchfmt.ScaleSchema,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Source:    "dpsbench",
	}
	work, err := os.MkdirTemp("", "dpsbench-scale")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	for _, scale := range scales {
		cell, err := runScaleCell(scale, days, filepath.Join(work, fmt.Sprintf("scale%d.dpsa", scale)), log)
		if err != nil {
			return fmt.Errorf("scale 1:%d: %w", scale, err)
		}
		doc.Cells = append(doc.Cells, cell)
		log.Info("scale cell complete", "scale", scale,
			"partitions", cell.Partitions, "rows", cell.Rows, "file_bytes", cell.FileBytes,
			"mem_ratio", fmt.Sprintf("%.3f", cell.MemRatio),
			"throughput_ratio", fmt.Sprintf("%.2f", cell.ThroughputRatio),
			"parity_ok", cell.ParityOK)
	}
	if err := doc.Write(out); err != nil {
		return err
	}
	log.Info("scale sweep written", "out", out, "cells", len(doc.Cells))
	return nil
}

// runScaleCell measures one scale: generate → save → drop the resident
// store → build streaming, then full, each under the peak sampler. The
// streaming build runs first so the full build's much larger residual
// heap cannot inflate the streaming path's RSS reading.
func runScaleCell(scale, days int, path string, log *slog.Logger) (benchfmt.ScaleCell, error) {
	cell := benchfmt.ScaleCell{Scale: scale, Days: days}
	s, world, err := dataset("", scale, days)
	if err != nil {
		return cell, err
	}
	parts := core.Partitions(s)
	cell.Partitions = len(parts)
	if err := s.Save(path); err != nil {
		return cell, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return cell, err
	}
	cell.FileBytes = fi.Size()
	for _, pt := range parts {
		if b, ok := s.RowBatch(pt.Source, pt.Day); ok {
			cell.Rows += int64(b.Rows())
		}
	}
	log.Info("scale dataset saved", "world", world, "partitions", cell.Partitions, "file_bytes", cell.FileBytes)
	// Drop the generated store before measuring either path: the cell
	// compares the two read paths, not the generator's footprint.
	s = nil
	refs := core.MustGroundTruth()

	var streamIdx, fullIdx *api.Index
	cell.Stream, err = benchfmt.MeasureBuild(func() error {
		r, err := store.Open(path)
		if err != nil {
			return err
		}
		defer r.Close()
		// An index build visits every partition exactly once; a deeper
		// decoded-partition cache can never hit and only raises the peak.
		r.SetCachePartitions(1)
		streamIdx, err = api.NewIndexReader(r, refs)
		return err
	})
	if err != nil {
		return cell, fmt.Errorf("streaming build: %w", err)
	}

	cell.Full, err = benchfmt.MeasureBuild(func() error {
		full, err := store.Load(path)
		if err != nil {
			return err
		}
		fullIdx = api.NewIndex(full, refs)
		return nil
	})
	if err != nil {
		return cell, fmt.Errorf("full build: %w", err)
	}

	cell.ParityOK = sameIndexView(streamIdx, fullIdx)
	if cell.Partitions > 0 {
		if cell.Stream.BuildSeconds > 0 {
			cell.Stream.PartitionsPerSec = float64(cell.Partitions) / cell.Stream.BuildSeconds
		}
		if cell.Full.BuildSeconds > 0 {
			cell.Full.PartitionsPerSec = float64(cell.Partitions) / cell.Full.BuildSeconds
		}
	}
	cell.FillRatios()
	return cell, nil
}

// sameIndexView deep-compares what the two indexes would serve: the day
// axis, every per-day aggregate, the detected-domain set, and (sampled
// for large sets) full per-domain histories.
func sameIndexView(a, b *api.Index) bool {
	if !slices.Equal(a.Days(), b.Days()) {
		return false
	}
	for _, d := range a.Days() {
		ai, aok := a.Day(d)
		bi, bok := b.Day(d)
		if aok != bok || !reflect.DeepEqual(ai, bi) {
			return false
		}
	}
	ad, bd := a.Domains(), b.Domains()
	if !slices.Equal(ad, bd) {
		return false
	}
	stride := 1
	if len(ad) > 2000 {
		stride = len(ad) / 2000
	}
	for i := 0; i < len(ad); i += stride {
		ah, aok := a.Domain(ad[i])
		bh, bok := b.Domain(ad[i])
		if aok != bok || !reflect.DeepEqual(ah, bh) {
			return false
		}
	}
	return true
}
