// Command dpsreport reproduces the paper's evaluation: it generates the
// synthetic world, streams the daily active-DNS measurement over the full
// window, and regenerates every table and figure.
//
// Usage:
//
//	dpsreport [-scale 1000] [-days 0] [-workers N] [-samples 24]
//	          [-artifact all|table1|table2|fig2|...|fig8|classification|anomalies]
//	          [-csv DIR]
//
// -scale divides every paper magnitude (1000 reproduces the paper at
// 1:1000); -days truncates the 550-day window for quick looks; -csv also
// writes machine-readable series for external plotting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dpsadopt/internal/experiment"
	"dpsadopt/internal/report"
	"dpsadopt/internal/simtime"
)

func main() {
	var (
		scale    = flag.Int("scale", 1000, "world scale divisor (1000 = paper at 1:1000)")
		days     = flag.Int("days", 0, "truncate the run to N days (0 = full 550)")
		workers  = flag.Int("workers", 8, "measurement workers")
		samples  = flag.Int("samples", 24, "rows per rendered series")
		artifact = flag.String("artifact", "all", "which artifact to print")
		csvDir   = flag.String("csv", "", "directory for CSV series (optional)")
		svgDir   = flag.String("svg", "", "directory for SVG figures (optional)")
		quietDay = flag.String("quiet-day", "2015-07-25", "anomaly-free day for Table 2 discovery")
	)
	flag.Parse()

	r, err := experiment.New(experiment.Config{
		Scale:   *scale,
		Workers: *workers,
		Days:    *days,
		OnProgress: func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "measured %d/%d days\n", done, total)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "world: %s\n", r.World.Stats())
	start := time.Now()
	if err := r.Run(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "measurement+analysis pass: %s\n", time.Since(start).Round(time.Millisecond))

	qd, err := simtime.Parse(*quietDay)
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	show := func(name string) bool { return *artifact == "all" || *artifact == name }

	if show("table1") {
		report.Table1(out, r.Table1())
		fmt.Fprintln(out)
	}
	if show("table2") {
		if !r.Window().Contains(qd) {
			fmt.Fprintf(out, "Table 2: quiet day %s outside run window %s; skipped\n\n", qd, r.Window())
		} else {
			t2, err := r.Table2(qd)
			if err != nil {
				fatal(err)
			}
			report.Table2(out, t2)
			fmt.Fprintln(out)
		}
	}
	if show("fig2") {
		report.Figure2(out, r.Figure2(), *samples)
		fmt.Fprintln(out)
	}
	if show("fig3") {
		report.Figure3(out, r.Figure3(), *samples)
		fmt.Fprintln(out)
	}
	if show("fig4") {
		report.Figure4(out, r.Figure4())
		fmt.Fprintln(out)
	}
	if show("fig5") {
		report.Growth(out, "Figure 5: growth of DPS use in 50% of the DNS (smoothed, anomaly-cleaned)", r.Figure5(), *samples)
		fmt.Fprintln(out)
	}
	if show("fig6") {
		f6 := r.Figure6()
		report.Growth(out, "Figure 6a: growth of DPS use in .nl", f6.NL, *samples)
		report.Growth(out, "Figure 6b: growth of DPS use in the Alexa list", f6.Alexa, *samples)
		fmt.Fprintln(out)
	}
	if show("fig7") {
		report.Figure7(out, r.Figure7())
		fmt.Fprintln(out)
	}
	if show("fig8") {
		report.Figure8(out, r.Figure8())
		fmt.Fprintln(out)
	}
	if show("classification") {
		report.Classification(out, r.Classification())
		fmt.Fprintln(out)
	}
	if show("anomalies") {
		an, err := r.Anomalies(1)
		if err != nil {
			fatal(err)
		}
		report.Anomalies(out, an)
	}
	if *csvDir != "" {
		if err := writeCSVs(r, *csvDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "CSV series written to %s\n", *csvDir)
	}
	if *svgDir != "" {
		if err := writeSVGs(r, *svgDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "SVG figures written to %s\n", *svgDir)
	}
}

func writeSVGs(r *experiment.Runner, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeChart := func(name, title string, days []simtime.Day, series []report.SVGSeries, logY bool) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return report.WriteSVGChart(f, title, days, series, logY)
	}
	f2 := r.Figure2()
	var s2 []report.SVGSeries
	for _, s := range f2 {
		s2 = append(s2, report.SVGSeries{Name: s.Name, Vals: s.Vals})
	}
	if err := writeChart("figure2.svg", "Figure 2: DPS use and zone breakdown", f2[0].Days, s2, false); err != nil {
		return err
	}
	for _, p := range r.Figure3() {
		err := writeChart("figure3_"+p.Provider+".svg", "Figure 3: "+p.Provider, p.Days, []report.SVGSeries{
			{Name: "total", Vals: p.Total}, {Name: "AS", Vals: p.AS},
			{Name: "CNAME", Vals: p.CNAME}, {Name: "NS", Vals: p.NS},
		}, true)
		if err != nil {
			return err
		}
	}
	g := r.Figure5()
	if len(g.Days) > 0 {
		if err := writeChart("figure5.svg", "Figure 5: growth of DPS use in 50% of the DNS", g.Days, []report.SVGSeries{
			{Name: "DPS adoption", Vals: g.Adoption}, {Name: "overall expansion", Vals: g.Expansion},
		}, false); err != nil {
			return err
		}
	}
	f6 := r.Figure6()
	if len(f6.NL.Days) > 0 {
		if err := writeChart("figure6.svg", "Figure 6: growth of DPS use in .nl and Alexa", f6.NL.Days, []report.SVGSeries{
			{Name: ".nl adoption", Vals: f6.NL.Adoption},
			{Name: ".nl expansion", Vals: f6.NL.Expansion},
			{Name: "Alexa adoption", Vals: f6.Alexa.Adoption},
		}, false); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVs(r *experiment.Runner, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, days []simtime.Day, cols map[string][]float64, order []string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return report.SeriesCSV(f, days, cols, order)
	}
	f2 := r.Figure2()
	cols := map[string][]float64{}
	var order []string
	for _, s := range f2 {
		cols[s.Name] = s.Vals
		order = append(order, s.Name)
	}
	if err := write("figure2.csv", f2[0].Days, cols, order); err != nil {
		return err
	}
	for _, p := range r.Figure3() {
		if err := write("figure3_"+p.Provider+".csv", p.Days, map[string][]float64{
			"total": p.Total, "as": p.AS, "cname": p.CNAME, "ns": p.NS,
		}, []string{"total", "as", "cname", "ns"}); err != nil {
			return err
		}
	}
	g := r.Figure5()
	if len(g.Days) > 0 {
		if err := write("figure5.csv", g.Days, map[string][]float64{
			"adoption": g.Adoption, "expansion": g.Expansion,
		}, []string{"adoption", "expansion"}); err != nil {
			return err
		}
	}
	// Fig 7: one CSV with per-provider in/out/delta per bin.
	f7, err := os.Create(filepath.Join(dir, "figure7.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f7, "provider,bin_start,in,out,delta")
	for _, p := range r.Figure7() {
		for _, b := range p.Bins {
			fmt.Fprintf(f7, "%s,%s,%d,%d,%d\n", p.Provider, b.Start, b.In, b.Out, b.Delta())
		}
	}
	if err := f7.Close(); err != nil {
		return err
	}
	// Fig 8: per-provider CDF points.
	f8, err := os.Create(filepath.Join(dir, "figure8.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f8, "provider,duration_days,cdf")
	for _, p := range r.Figure8() {
		days, frac := p.Stats.CDF()
		for i := range days {
			fmt.Fprintf(f8, "%s,%d,%.4f\n", p.Provider, days[i], frac[i])
		}
	}
	return f8.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsreport:", err)
	os.Exit(1)
}
