package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestSlowLogRetainsSlowest(t *testing.T) {
	l := NewSlowLog(4)
	for i := 1; i <= 10; i++ {
		l.Record(SlowQuery{Route: "r", Detail: fmt.Sprintf("q%d", i), Seconds: float64(i)})
	}
	got := l.Entries("r")
	if len(got) != 4 {
		t.Fatalf("retained %d entries, want 4", len(got))
	}
	for i, want := range []float64{10, 9, 8, 7} {
		if got[i].Seconds != want {
			t.Fatalf("entry %d = %v, want %v (slowest first)", i, got[i].Seconds, want)
		}
	}

	// A fast request after the heap is full is rejected on the atomic
	// floor without displacing anything.
	l.Record(SlowQuery{Route: "r", Seconds: 0.5})
	if got := l.Entries("r"); len(got) != 4 || got[3].Seconds != 7 {
		t.Fatalf("fast request displaced an entry: %+v", got)
	}

	// A slower one replaces the floor entry.
	l.Record(SlowQuery{Route: "r", Seconds: 7.5})
	got = l.Entries("r")
	if got[3].Seconds != 7.5 {
		t.Fatalf("floor not replaced: %+v", got)
	}

	if l.Entries("missing") != nil {
		t.Fatalf("unknown route returned entries")
	}
}

func TestSlowLogRoutesIsolated(t *testing.T) {
	l := NewSlowLog(2)
	l.Record(SlowQuery{Route: "a", Seconds: 1})
	l.Record(SlowQuery{Route: "b", Seconds: 2})
	if routes := l.Routes(); len(routes) != 2 || routes[0] != "a" || routes[1] != "b" {
		t.Fatalf("routes = %v", routes)
	}
	if len(l.Entries("a")) != 1 || len(l.Entries("b")) != 1 {
		t.Fatalf("routes leaked into each other")
	}
}

func TestSlowLogHandler(t *testing.T) {
	l := NewSlowLog(8)
	for i := 1; i <= 6; i++ {
		l.Record(SlowQuery{Route: "domain", Detail: fmt.Sprintf("/v1/domain/d%d.com", i), Seconds: float64(i), Status: 200, Admission: AdmissionOK})
	}
	l.Record(SlowQuery{Route: "day", Seconds: 0.5, Status: 200, Admission: AdmissionOK})

	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog?route=domain&n=3", nil))
	var resp struct {
		PerRouteCapacity int                    `json:"per_route_capacity"`
		Routes           map[string][]SlowQuery `json:"routes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.PerRouteCapacity != 8 {
		t.Fatalf("capacity = %d", resp.PerRouteCapacity)
	}
	if len(resp.Routes) != 1 {
		t.Fatalf("route filter ignored: %v", resp.Routes)
	}
	entries := resp.Routes["domain"]
	if len(entries) != 3 || entries[0].Seconds != 6 || entries[0].Detail != "/v1/domain/d6.com" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record(SlowQuery{Route: "r", Seconds: float64(g*1000 + i)})
				if i%100 == 0 {
					l.Entries("r")
				}
			}
		}(g)
	}
	wg.Wait()
	got := l.Entries("r")
	if len(got) != 16 {
		t.Fatalf("retained %d, want 16", len(got))
	}
	// The global slowest must always survive.
	if got[0].Seconds != 7999 {
		t.Fatalf("slowest = %v, want 7999", got[0].Seconds)
	}
}
