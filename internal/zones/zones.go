// Package zones models the evolution of top-level-domain namespaces: the
// daily registration and deletion of second-level domains that the paper's
// Stage I observes by downloading registry zone files every day.
//
// A TLD is built from a target start count, end count, and churn rate; the
// generator emits a deterministic set of domain lifetimes such that the
// number of active domains interpolates between the targets while the
// population turns over at the configured rate — reproducing both the
// "overall expansion" denominator of Figure 5 and the #SLDs-observed
// numerator of Table 1 (unique names seen over the whole period exceed the
// population on any single day).
package zones

import (
	"fmt"
	"math/rand"

	"dpsadopt/internal/simtime"
)

// Forever marks a domain that is never deleted within the simulation.
const Forever simtime.Day = 1 << 30

// Config describes one TLD's evolution.
type Config struct {
	// TLD is the zone label, e.g. "com".
	TLD string
	// Window is the modelled interval; counts are hit at Window.Start and
	// Window.End-1.
	Window simtime.Range
	// StartCount and EndCount are the active-domain targets.
	StartCount, EndCount int
	// ChurnPerDay is the fraction of the population deleted (and
	// replaced, beyond net growth) each day, e.g. 0.0005.
	ChurnPerDay float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Lifetime is one domain's existence interval. Names are unique within
// the TLD.
type Lifetime struct {
	Name   string
	Active simtime.Range // [registration, deletion)
}

// TLD is a generated namespace.
type TLD struct {
	Config  Config
	Domains []Lifetime
}

// Build generates the namespace for cfg.
func Build(cfg Config) (*TLD, error) {
	if cfg.StartCount < 0 || cfg.EndCount < 0 || cfg.Window.Len() == 0 {
		return nil, fmt.Errorf("zones: bad config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &TLD{Config: cfg}
	// Initial population, registered before the window opens.
	for i := 0; i < cfg.StartCount; i++ {
		t.Domains = append(t.Domains, Lifetime{
			Name:   domainName(cfg.TLD, len(t.Domains)),
			Active: simtime.Range{Start: cfg.Window.Start - 1, End: Forever},
		})
	}
	alive := make([]int, cfg.StartCount)
	for i := range alive {
		alive[i] = i
	}
	days := cfg.Window.Len()
	for di := 1; di < days; di++ {
		day := cfg.Window.Start + simtime.Day(di)
		prevTarget := interpolate(cfg.StartCount, cfg.EndCount, di-1, days-1)
		target := interpolate(cfg.StartCount, cfg.EndCount, di, days-1)
		deaths := int(cfg.ChurnPerDay * float64(prevTarget))
		births := target - prevTarget + deaths
		if births < 0 {
			deaths -= births
			births = 0
		}
		for k := 0; k < deaths && len(alive) > 0; k++ {
			j := rng.Intn(len(alive))
			idx := alive[j]
			t.Domains[idx].Active.End = day
			alive[j] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		}
		for k := 0; k < births; k++ {
			t.Domains = append(t.Domains, Lifetime{
				Name:   domainName(cfg.TLD, len(t.Domains)),
				Active: simtime.Range{Start: day, End: Forever},
			})
			alive = append(alive, len(t.Domains)-1)
		}
	}
	return t, nil
}

// interpolate returns the population target after step of total steps.
func interpolate(start, end, step, total int) int {
	if total <= 0 {
		return start
	}
	return start + (end-start)*step/total
}

// domainName derives a stable, pronounceable-ish unique name from the
// domain's index: alternating consonant/vowel digits of the index, plus a
// short numeric disambiguator.
func domainName(tld string, idx int) string {
	const consonants = "bcdfghjklmnpqrstvwz"
	const vowels = "aeiou"
	n := idx
	buf := make([]byte, 0, 12)
	for i := 0; i < 3; i++ {
		buf = append(buf, consonants[n%len(consonants)])
		n /= len(consonants)
		buf = append(buf, vowels[n%len(vowels)])
		n /= len(vowels)
	}
	return fmt.Sprintf("%s%d.%s", buf, idx, tld)
}

// ActiveCount returns the number of domains registered on the given day.
func (t *TLD) ActiveCount(day simtime.Day) int {
	n := 0
	for i := range t.Domains {
		if t.Domains[i].Active.Contains(day) {
			n++
		}
	}
	return n
}

// ObservedSLDs returns the number of unique names seen at any point during
// the window — the Table 1 "#SLDs" statistic.
func (t *TLD) ObservedSLDs() int { return len(t.Domains) }

// ForEachActive calls fn for every domain index active on day.
func (t *TLD) ForEachActive(day simtime.Day, fn func(i int, lt Lifetime)) {
	for i := range t.Domains {
		if t.Domains[i].Active.Contains(day) {
			fn(i, t.Domains[i])
		}
	}
}
