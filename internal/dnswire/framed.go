package dnswire

import (
	"encoding/binary"
	"errors"
	"io"
)

// DNS-over-TCP framing (RFC 1035 §4.2.2): each message on a stream is
// preceded by a two-byte big-endian length.

// maxFramedMessage bounds accepted stream message sizes.
const maxFramedMessage = 1 << 16

// ErrBadFrame reports an invalid TCP frame length.
var ErrBadFrame = errors.New("dnswire: bad TCP frame length")

// ReadFramed reads one length-prefixed DNS message from a stream.
func ReadFramed(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if n == 0 || n > maxFramedMessage {
		return nil, ErrBadFrame
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// WriteFramed writes one length-prefixed DNS message to a stream.
func WriteFramed(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return ErrBadFrame
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}
