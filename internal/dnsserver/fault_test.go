package dnsserver

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/transport"
)

// fixedFault orders the same fault for every query.
type fixedFault struct {
	fault Fault
	delay time.Duration
}

func (f fixedFault) QueryFault(string) (Fault, time.Duration) { return f.fault, f.delay }

// askUDP sends one query datagram and returns the decoded response, or nil
// on timeout.
func askUDP(t *testing.T, network transport.Network, server netip.AddrPort, name string, timeout time.Duration) *dnswire.Message {
	t.Helper()
	cli, err := network.Dial(netip.MustParseAddr("10.9.0.9"))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	q := dnswire.NewQuery(77, name, dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.WriteTo(wire, server); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, transport.MTU)
	n, _, err := cli.ReadFrom(buf, timeout)
	if errors.Is(err, transport.ErrTimeout) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFaultInjection(t *testing.T) {
	network := transport.NewMem(31)
	srv := New()
	srv.AddZone(testZone())
	run, err := Start(srv, network, "10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()
	addr := netip.MustParseAddrPort("10.0.0.1:53")

	srv.SetFaults(fixedFault{fault: FaultServfail})
	if r := askUDP(t, network, addr, "www.examp.le", time.Second); r == nil || r.Flags.RCode != dnswire.RCodeServFail {
		t.Fatalf("servfail fault: resp = %+v", r)
	}

	srv.SetFaults(fixedFault{fault: FaultTruncate})
	r := askUDP(t, network, addr, "www.examp.le", time.Second)
	if r == nil || !r.Flags.Truncated || len(r.Answers) != 0 {
		t.Fatalf("truncate fault: resp = %+v", r)
	}

	srv.SetFaults(fixedFault{fault: FaultDrop})
	if r := askUDP(t, network, addr, "www.examp.le", 50*time.Millisecond); r != nil {
		t.Fatalf("drop fault: got response %+v", r)
	}

	srv.SetFaults(fixedFault{fault: FaultSlow, delay: 30 * time.Millisecond})
	start := time.Now()
	r = askUDP(t, network, addr, "www.examp.le", time.Second)
	if r == nil || len(r.Answers) != 1 {
		t.Fatalf("slow fault: resp = %+v", r)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("slow fault answered in %v, want >= 30ms", elapsed)
	}

	// Removing the injector restores normal answers.
	srv.SetFaults(nil)
	if r := askUDP(t, network, addr, "www.examp.le", time.Second); r == nil || len(r.Answers) != 1 || r.Flags.Truncated {
		t.Fatalf("after SetFaults(nil): resp = %+v", r)
	}
}

// TestStopDrainsInFlightQueries exercises the graceful-shutdown guarantee
// under -race: Stop must wait for every datagram already read off the
// socket to be fully handled by the worker pool, even while handlers are
// deliberately slowed so queries are in flight at close time.
func TestStopDrainsInFlightQueries(t *testing.T) {
	network := transport.NewMem(32)
	srv := New()
	srv.AddZone(testZone())
	srv.SetConcurrency(8)
	srv.SetFaults(fixedFault{fault: FaultSlow, delay: 2 * time.Millisecond})
	run, err := Start(srv, network, "10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	addr := netip.MustParseAddrPort("10.0.0.1:53")
	cli, err := network.Dial(netip.MustParseAddr("10.9.0.8"))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const total = 200
	for i := 0; i < total; i++ {
		q := dnswire.NewQuery(uint16(i), "www.examp.le", dnswire.TypeA)
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.WriteTo(wire, addr); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the serve loop to have read some queries so the pool is
	// busy when Stop lands mid-burst.
	for srv.Received() < total/4 {
		time.Sleep(time.Millisecond)
	}
	if err := run.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// Every datagram read before close must have been handled: with only
	// well-formed queries and a non-drop fault, handled == received.
	if got, want := srv.Queries(), srv.Received(); got != want {
		t.Errorf("queries handled = %d, datagrams received = %d: Stop abandoned in-flight queries", got, want)
	}
	if srv.Received() == 0 {
		t.Error("no datagrams received before Stop; test proved nothing")
	}
}
