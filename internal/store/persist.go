package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dpsadopt/internal/simtime"
)

// On-disk format: a flate-free framed binary archive (the columns are
// already dictionary-encoded; callers can compress the file externally).
//
//	magic "DPSA" | version u32
//	dict: count u32, then per string: len u16 + bytes
//	partitions: count u32, then per partition:
//	  source len u16 + bytes | day i64 | rows u32 | v6 count u32 |
//	  asnVals count u32 | columns in order (domains, kinds, addrs,
//	  addrs6, strs, asnOff, asnVals)
//
// Version 3 appends a partition directory after the partitions so large
// datasets can be opened without decoding every day block:
//
//	directory: count u32, then per partition:
//	  source len u16 + bytes | day i64 | rows u32 |
//	  offset u64 | length u64      (byte range of the partition)
//	footer: directory offset u64 | magic "DPSD"
//
// Version 4 makes the file crash-evident: each directory entry carries a
// CRC32 (IEEE) of its partition's byte range, and the footer grows two
// checksums covering the remaining sections:
//
//	directory entry: ... | offset u64 | length u64 | crc u32
//	footer: directory offset u64 | dict crc u32 | dir crc u32 | "DPSD"
//
// The dict checksum covers [8, first partition offset) — the dictionary
// plus the partition-count word — and the dir checksum covers
// [directory offset, footer start). Together with the per-partition
// checksums every byte between header and footer is covered, so a torn
// write or bit flip anywhere is detected at load instead of surfacing as
// silently wrong data. Loads degrade gracefully: a damaged partition is
// quarantined (see PartialLoadError) while the surviving partitions
// still load.
//
// Version 2 readers that stop after the partition count are unaffected
// (the directory is trailing data), and version 4 readers fall back to a
// full sequential decode on version 2 files, which have no directory.
//
// All integers are little-endian. Partitions are written in sorted
// (source, day) order, so saving the same store twice yields identical
// bytes.

const (
	persistMagic   = "DPSA"
	persistVersion = 4
	dirMagic       = "DPSD"
	footerSizeV3   = 8 + 4     // directory offset + dirMagic
	footerSizeV4   = 8 + 8 + 4 // directory offset + dict/dir CRCs + dirMagic
)

// footerSize returns the trailing footer length for a format version.
func footerSize(version uint32) int64 {
	if version >= 4 {
		return footerSizeV4
	}
	return footerSizeV3
}

// ErrNoDirectory reports a dataset written before the partition
// directory existed (version 2); callers fall back to a full Load.
var ErrNoDirectory = errors.New("store: dataset has no partition directory")

// PartitionInfo describes one (source, day) partition listed in a
// dataset file's directory.
type PartitionInfo struct {
	Source string
	Day    simtime.Day
	Rows   int
	// CRC is the partition byte range's CRC32 (IEEE); zero on version 3
	// files, which predate checksums.
	CRC uint32

	offset, length uint64
}

// PartitionKey identifies one (source, day) partition — the map key for
// keyed directory lookups and follower applied-set bookkeeping.
type PartitionKey struct {
	Source string
	Day    simtime.Day
}

// Key returns the entry's map key.
func (pi PartitionInfo) Key() PartitionKey { return PartitionKey{pi.Source, pi.Day} }

// Extent reports where the partition's bytes live in the file — the
// pread range a streaming read covers and the span an operator would
// carve out of a damaged file for offline salvage.
func (pi PartitionInfo) Extent() (offset, length uint64) { return pi.offset, pi.length }

func (k PartitionKey) String() string { return fmt.Sprintf("%s/%s", k.Source, k.Day) }

// IndexDirectory builds a keyed lookup over a directory listing. Single
// lookups through the map are O(1) where scanning the slice is O(n) —
// the difference matters to the follower tier, which resolves partitions
// against a (potentially large) directory on every delta apply.
func IndexDirectory(dir []PartitionInfo) map[PartitionKey]PartitionInfo {
	idx := make(map[PartitionKey]PartitionInfo, len(dir))
	for _, ent := range dir {
		idx[ent.Key()] = ent
	}
	return idx
}

// QuarantinedPartition records one damaged partition that a salvaging
// load moved aside instead of returning as silently wrong data.
type QuarantinedPartition struct {
	Source string
	Day    simtime.Day
	// Path is the quarantine file holding the partition's raw bytes
	// (empty when writing the quarantine file itself failed).
	Path string
	// Err is the descriptive load failure (checksum mismatch, truncated
	// column, out-of-range ID, ...).
	Err string
}

// PartialLoadError reports a salvaged load: the store returned alongside
// it holds every surviving partition, and the damaged ones listed here
// were quarantined into a quarantine/ directory next to the dataset.
// Callers that can tolerate partial data (degraded-day accounting masks
// the missing days downstream) should errors.As for this type and
// continue with the returned store.
type PartialLoadError struct {
	Quarantined []QuarantinedPartition
}

func (e *PartialLoadError) Error() string {
	if len(e.Quarantined) == 1 {
		q := e.Quarantined[0]
		return fmt.Sprintf("store: partition %s/%s quarantined: %s", q.Source, q.Day, q.Err)
	}
	return fmt.Sprintf("store: %d partitions quarantined (first: %s/%s: %s)",
		len(e.Quarantined), e.Quarantined[0].Source, e.Quarantined[0].Day, e.Quarantined[0].Err)
}

// Save writes the store to path atomically and durably: the bytes go to
// a temp file in the target directory, are fsynced, and only then
// renamed over path (followed by a directory fsync), so a crash at any
// instant leaves either the old complete file or the new complete file —
// never a torn .dpsa.
func (s *Store) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := s.encode(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// The data must be durable before the rename publishes it: a rename
	// surviving a crash that the data did not would be a torn file with
	// a valid name.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Load reads a store written by Save (any supported version), verifying
// checksums on version 4 files. Damaged partitions do not fail the whole
// load: they are quarantined into a quarantine/ directory next to path
// and reported via a *PartialLoadError, while every surviving partition
// is returned in the store. Errors that predate the directory (header,
// dictionary, directory, footer corruption) are unrecoverable and return
// a nil store.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if version < 3 {
		// Legacy: no directory, no checksums — strict sequential decode.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return decode(bufio.NewReaderSize(f, 1<<20))
	}
	meta, err := readFooter(f, version)
	if err != nil {
		return nil, err
	}
	dir, err := readDirectoryAt(f, meta)
	if err != nil {
		return nil, err
	}
	if version >= 4 {
		if err := verifySharedSections(f, meta, dir); err != nil {
			return nil, err
		}
	}
	s := New()
	if err := readDictAt(f, s); err != nil {
		return nil, err
	}
	var quarantined []QuarantinedPartition
	for i := range dir {
		ent := &dir[i]
		if err := loadDirPartition(f, version, ent, s); err != nil {
			quarantined = append(quarantined, quarantinePartition(path, f, ent, err))
		}
	}
	if len(quarantined) > 0 {
		mQuarantined.Add(int64(len(quarantined)))
		return s, &PartialLoadError{Quarantined: quarantined}
	}
	return s, nil
}

// loadDirPartition checks and decodes one directory-listed partition.
func loadDirPartition(f *os.File, version uint32, ent *PartitionInfo, s *Store) error {
	if version >= 4 {
		got, err := sectionCRC(f, int64(ent.offset), int64(ent.length))
		if err != nil {
			return fmt.Errorf("reading partition bytes: %w", err)
		}
		if got != ent.CRC {
			mCRCFailures.Inc()
			return fmt.Errorf("checksum mismatch (want %08x, got %08x): torn write or corruption at rest", ent.CRC, got)
		}
	}
	sec := io.NewSectionReader(f, int64(ent.offset), int64(ent.length))
	if err := readPartition(bufio.NewReaderSize(sec, 1<<20), s); err != nil {
		return err
	}
	return nil
}

// quarantinePartition copies a damaged partition's raw bytes into a
// quarantine/ directory next to the dataset, with a .reason file
// describing the failure. Quarantine I/O failures never fail the load;
// the report then carries an empty Path.
func quarantinePartition(path string, f *os.File, ent *PartitionInfo, cause error) QuarantinedPartition {
	q := QuarantinedPartition{Source: ent.Source, Day: ent.Day, Err: cause.Error()}
	qdir := filepath.Join(filepath.Dir(path), "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return q
	}
	base := filepath.Base(path)
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%s.%s.part", base, ent.Source, ent.Day))
	out, err := os.Create(dst)
	if err != nil {
		return q
	}
	_, cpErr := io.Copy(out, io.NewSectionReader(f, int64(ent.offset), int64(ent.length)))
	if closeErr := out.Close(); cpErr == nil {
		cpErr = closeErr
	}
	if cpErr != nil {
		os.Remove(dst)
		return q
	}
	q.Path = dst
	reason := fmt.Sprintf("dataset: %s\npartition: %s/%s\nbytes: [%d, %d)\nerror: %s\n",
		path, ent.Source, ent.Day, ent.offset, ent.offset+ent.length, cause)
	_ = os.WriteFile(dst+".reason", []byte(reason), 0o644)
	return q
}

// QuarantineFile moves a whole damaged dataset file into a quarantine/
// directory next to it, with a .reason file, and returns the new path.
// Used when a file is unsalvageable (or is a single-partition spool).
func QuarantineFile(path string, cause error) (string, error) {
	qdir := filepath.Join(filepath.Dir(path), "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", err
	}
	dst := filepath.Join(qdir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		return "", err
	}
	reason := fmt.Sprintf("dataset: %s\nerror: %s\n", path, cause)
	_ = os.WriteFile(dst+".reason", []byte(reason), 0o644)
	mQuarantined.Inc()
	return dst, nil
}

// Verify checks a dataset file's integrity without building a store: on
// version 4 files it validates the footer, directory, and every section
// checksum (dictionary, directory, each partition); on older versions it
// falls back to a full structural decode. A nil return means a Load of
// the same bytes cannot lose or invent data.
func Verify(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	version, err := readHeader(f)
	if err != nil {
		return err
	}
	if version < 4 {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if _, err := decode(bufio.NewReaderSize(f, 1<<20)); err != nil {
			return err
		}
		if version >= 3 {
			meta, err := readFooter(f, version)
			if err != nil {
				return err
			}
			if _, err := readDirectoryAt(f, meta); err != nil {
				return err
			}
		}
		return nil
	}
	meta, err := readFooter(f, version)
	if err != nil {
		return err
	}
	dir, err := readDirectoryAt(f, meta)
	if err != nil {
		return err
	}
	if err := verifySharedSections(f, meta, dir); err != nil {
		return err
	}
	for i := range dir {
		ent := &dir[i]
		got, err := sectionCRC(f, int64(ent.offset), int64(ent.length))
		if err != nil {
			return fmt.Errorf("store: partition %s/%s: %w", ent.Source, ent.Day, err)
		}
		if got != ent.CRC {
			mCRCFailures.Inc()
			return fmt.Errorf("store: partition %s/%s checksum mismatch (want %08x, got %08x)",
				ent.Source, ent.Day, ent.CRC, got)
		}
	}
	return nil
}

// LoadPartition decodes a single (source, day) partition from a dataset
// file, plus the shared dictionary, without decoding any other day
// block. Version 4 partition checksums are verified first; a corrupt
// partition is quarantined next to the dataset and reported with a
// descriptive error. On version 2 files (no directory) it falls back to
// a full decode and prunes. The returned store contains exactly one
// partition.
func LoadPartition(path, source string, day simtime.Day) (*Store, error) {
	return LoadPartitions(path, []PartitionKey{{source, day}})
}

// LoadPartitions decodes a set of (source, day) partitions — plus the
// shared dictionary — from a dataset file in one pass: one open, one
// directory read, one keyed lookup per requested partition. This is the
// follower's catch-up path: a delta of K new partitions costs K seeks
// into the day blocks, never a full-archive decode. A requested
// partition missing from the directory fails the whole load; a damaged
// partition is quarantined and reported via *PartialLoadError while the
// surviving requested partitions still load. On version 2 files (no
// directory) it falls back to a full decode and prunes.
func LoadPartitions(path string, keys []PartitionKey) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if version < 3 {
		// Legacy: no directory to seek by. Decode everything, keep the
		// requested set.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		s, err := decode(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return nil, err
		}
		want := make(map[PartitionKey]bool, len(keys))
		for _, k := range keys {
			if s.blocks[k.Source][k.Day] == nil {
				return nil, fmt.Errorf("store: no partition %s in %s", k, path)
			}
			want[k] = true
		}
		for _, src := range s.Sources() {
			for _, d := range s.Days(src) {
				if !want[PartitionKey{src, d}] {
					s.DropDay(src, d)
				}
			}
		}
		return s, nil
	}
	meta, err := readFooter(f, version)
	if err != nil {
		return nil, err
	}
	dir, err := readDirectoryAt(f, meta)
	if err != nil {
		return nil, err
	}
	byKey := IndexDirectory(dir)
	s := New()
	if err := readDictAt(f, s); err != nil {
		return nil, err
	}
	var quarantined []QuarantinedPartition
	for _, k := range keys {
		ent, ok := byKey[k]
		if !ok {
			return nil, fmt.Errorf("store: no partition %s in %s", k, path)
		}
		if err := loadDirPartition(f, version, &ent, s); err != nil {
			quarantined = append(quarantined, quarantinePartition(path, f, &ent, err))
		}
	}
	if len(quarantined) > 0 {
		mQuarantined.Add(int64(len(quarantined)))
		return s, &PartialLoadError{Quarantined: quarantined}
	}
	return s, nil
}

// Directory reads a dataset file's partition listing without decoding
// any data. Version 2 files return ErrNoDirectory.
func Directory(path string) ([]PartitionInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if version < 3 {
		return nil, ErrNoDirectory
	}
	meta, err := readFooter(f, version)
	if err != nil {
		return nil, err
	}
	return readDirectoryAt(f, meta)
}

// readHeader validates the magic and returns the format version.
func readHeader(f *os.File) (uint32, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, err
	}
	if string(hdr[:4]) != persistMagic {
		return 0, fmt.Errorf("store: not a dataset file")
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version < 2 || version > persistVersion {
		return 0, fmt.Errorf("store: unsupported version %d", version)
	}
	return version, nil
}

// readDictAt seeks to the dictionary (it immediately follows the 8-byte
// header) and decodes it into s.
func readDictAt(f *os.File, s *Store) error {
	if _, err := f.Seek(8, io.SeekStart); err != nil {
		return err
	}
	return readDict(bufio.NewReaderSize(f, 1<<20), s)
}

// fileMeta is a v3+ file's footer, decoded.
type fileMeta struct {
	version uint32
	size    int64
	dirOff  uint64
	// dictCRC/dirCRC are the v4 section checksums (zero on v3).
	dictCRC, dirCRC uint32
}

// readFooter parses the trailing footer of a v3+ file.
func readFooter(f *os.File, version uint32) (fileMeta, error) {
	st, err := f.Stat()
	if err != nil {
		return fileMeta{}, err
	}
	meta := fileMeta{version: version, size: st.Size()}
	fs := footerSize(version)
	if meta.size < fs {
		return fileMeta{}, fmt.Errorf("store: file too short for directory footer")
	}
	foot := make([]byte, fs)
	if _, err := f.ReadAt(foot, meta.size-fs); err != nil {
		return fileMeta{}, err
	}
	if string(foot[fs-4:]) != dirMagic {
		return fileMeta{}, fmt.Errorf("store: directory footer missing or corrupt")
	}
	meta.dirOff = binary.LittleEndian.Uint64(foot[:8])
	if version >= 4 {
		meta.dictCRC = binary.LittleEndian.Uint32(foot[8:12])
		meta.dirCRC = binary.LittleEndian.Uint32(foot[12:16])
	}
	if meta.dirOff >= uint64(meta.size-fs) {
		return fileMeta{}, fmt.Errorf("store: directory offset out of range")
	}
	return meta, nil
}

// readDirectoryAt parses the partition directory located by meta.
func readDirectoryAt(f *os.File, meta fileMeta) ([]PartitionInfo, error) {
	dirLen := meta.size - footerSize(meta.version) - int64(meta.dirOff)
	r := bufio.NewReader(io.NewSectionReader(f, int64(meta.dirOff), dirLen))
	count, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if count > maxPersistCount {
		return nil, fmt.Errorf("store: directory too large")
	}
	out := make([]PartitionInfo, 0, count)
	for i := uint32(0); i < count; i++ {
		var ent PartitionInfo
		if ent.Source, err = readStr(r); err != nil {
			return nil, err
		}
		var day int64
		if err := binary.Read(r, binary.LittleEndian, &day); err != nil {
			return nil, err
		}
		ent.Day = simtime.Day(day)
		rows, err := readU32(r)
		if err != nil {
			return nil, err
		}
		ent.Rows = int(rows)
		var buf [16]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		ent.offset = binary.LittleEndian.Uint64(buf[:8])
		ent.length = binary.LittleEndian.Uint64(buf[8:])
		if meta.version >= 4 {
			if ent.CRC, err = readU32(r); err != nil {
				return nil, err
			}
		}
		if ent.offset+ent.length > uint64(meta.size) || ent.offset+ent.length < ent.offset {
			return nil, fmt.Errorf("store: directory entry out of range")
		}
		out = append(out, ent)
	}
	return out, nil
}

// verifySharedSections checks the v4 dictionary and directory checksums
// — the sections every partition depends on. A mismatch there is
// unsalvageable, so these fail the whole load.
func verifySharedSections(f *os.File, meta fileMeta, dir []PartitionInfo) error {
	// The dict section spans from the header to the first partition (or
	// straight to the directory when the store is empty), including the
	// partition-count word.
	partsStart := meta.dirOff
	for i := range dir {
		if dir[i].offset < partsStart {
			partsStart = dir[i].offset
		}
	}
	got, err := sectionCRC(f, 8, int64(partsStart)-8)
	if err != nil {
		return err
	}
	if got != meta.dictCRC {
		mCRCFailures.Inc()
		return fmt.Errorf("store: dictionary checksum mismatch (want %08x, got %08x)", meta.dictCRC, got)
	}
	dirLen := meta.size - footerSize(meta.version) - int64(meta.dirOff)
	got, err = sectionCRC(f, int64(meta.dirOff), dirLen)
	if err != nil {
		return err
	}
	if got != meta.dirCRC {
		mCRCFailures.Inc()
		return fmt.Errorf("store: directory checksum mismatch (want %08x, got %08x)", meta.dirCRC, got)
	}
	return nil
}

// sectionCRC computes the CRC32 (IEEE) of a byte range of f.
func sectionCRC(f *os.File, off, length int64) (uint32, error) {
	if length < 0 {
		return 0, fmt.Errorf("store: negative section length")
	}
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, io.NewSectionReader(f, off, length)); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// offsetWriter tracks the byte offset of everything written through it,
// plus a running CRC32 that encode resets at section boundaries, so the
// directory can record partition positions and checksums.
type offsetWriter struct {
	w   io.Writer
	n   uint64
	crc uint32
}

func (o *offsetWriter) Write(p []byte) (int, error) {
	n, err := o.w.Write(p)
	o.n += uint64(n)
	o.crc = crc32.Update(o.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (s *Store) encode(dst io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w := &offsetWriter{w: dst}
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := writeU32(w, persistVersion); err != nil {
		return err
	}
	w.crc = 0 // dict section checksum starts after the header
	// Dictionary.
	s.dict.mu.RLock()
	strs := s.dict.strs
	if err := writeU32(w, uint32(len(strs))); err != nil {
		s.dict.mu.RUnlock()
		return err
	}
	for _, str := range strs {
		if err := writeStr(w, str); err != nil {
			s.dict.mu.RUnlock()
			return err
		}
	}
	s.dict.mu.RUnlock()
	// Partitions, in sorted (source, day) order for deterministic bytes.
	sources := make([]string, 0, len(s.blocks))
	for src := range s.blocks {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	nParts := 0
	for _, days := range s.blocks {
		nParts += len(days)
	}
	if err := writeU32(w, uint32(nParts)); err != nil {
		return err
	}
	dictCRC := w.crc // covers dict + partition count word
	dir := make([]PartitionInfo, 0, nParts)
	for _, source := range sources {
		days := make([]simtime.Day, 0, len(s.blocks[source]))
		for day := range s.blocks[source] {
			days = append(days, day)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		for _, day := range days {
			b := s.blocks[source][day]
			start := w.n
			w.crc = 0
			if err := writePartition(w, source, day, b); err != nil {
				return err
			}
			dir = append(dir, PartitionInfo{
				Source: source, Day: day, Rows: b.rows(), CRC: w.crc,
				offset: start, length: w.n - start,
			})
		}
	}
	// Directory + footer.
	dirOff := w.n
	w.crc = 0
	if err := writeU32(w, uint32(len(dir))); err != nil {
		return err
	}
	for _, ent := range dir {
		if err := writeStr(w, ent.Source); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, int64(ent.Day)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(ent.Rows)); err != nil {
			return err
		}
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], ent.offset)
		binary.LittleEndian.PutUint64(buf[8:], ent.length)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
		if err := writeU32(w, ent.CRC); err != nil {
			return err
		}
	}
	var foot [footerSizeV4]byte
	binary.LittleEndian.PutUint64(foot[:8], dirOff)
	binary.LittleEndian.PutUint32(foot[8:12], dictCRC)
	binary.LittleEndian.PutUint32(foot[12:16], w.crc)
	copy(foot[16:], dirMagic)
	_, err := w.Write(foot[:])
	return err
}

// writePartition serialises one (source, day) block.
func writePartition(w io.Writer, source string, day simtime.Day, b *dayBlock) error {
	if err := writeStr(w, source); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(day)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(b.rows())); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(b.addrs6))); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(b.asnVals))); err != nil {
		return err
	}
	if err := writeU32s(w, b.domains); err != nil {
		return err
	}
	kinds := make([]byte, len(b.kinds))
	for i, k := range b.kinds {
		kinds[i] = byte(k)
	}
	if _, err := w.Write(kinds); err != nil {
		return err
	}
	if err := writeU32s(w, b.addrs); err != nil {
		return err
	}
	for _, a := range b.addrs6 {
		if _, err := w.Write(a[:]); err != nil {
			return err
		}
	}
	if err := writeU32s(w, b.strs); err != nil {
		return err
	}
	if err := writeU32s(w, b.asnOff); err != nil {
		return err
	}
	return writeU32s(w, b.asnVals)
}

// maxPersistCount bounds per-section element counts on load.
const maxPersistCount = 1 << 30

func decode(r io.Reader) (*Store, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if string(magic[:]) != persistMagic {
		return nil, fmt.Errorf("store: not a dataset file")
	}
	version, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if version < 2 || version > persistVersion {
		return nil, fmt.Errorf("store: unsupported version %d", version)
	}
	s := New()
	if err := readDict(r, s); err != nil {
		return nil, err
	}
	nParts, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nParts; i++ {
		if err := readPartition(r, s); err != nil {
			return nil, err
		}
	}
	// Trailing directory + footer bytes (version 3+) are intentionally
	// left unread: a full decode has no use for them.
	return s, nil
}

// readDict decodes the shared dictionary into s.
func readDict(r io.Reader, s *Store) error {
	nStrs, err := readU32(r)
	if err != nil {
		return err
	}
	if nStrs > maxPersistCount {
		return fmt.Errorf("store: dictionary too large")
	}
	for i := uint32(0); i < nStrs; i++ {
		str, err := readStr(r)
		if err != nil {
			return err
		}
		s.dict.ID(str)
	}
	return nil
}

// readPartition decodes one (source, day) block, validates it, and
// installs it in s.
func readPartition(r io.Reader, s *Store) error {
	source, err := readStr(r)
	if err != nil {
		return err
	}
	var day int64
	if err := binary.Read(r, binary.LittleEndian, &day); err != nil {
		return err
	}
	rows, err := readU32(r)
	if err != nil {
		return err
	}
	nV6, err := readU32(r)
	if err != nil {
		return err
	}
	nASN, err := readU32(r)
	if err != nil {
		return err
	}
	if rows > maxPersistCount || nV6 > rows || nASN > maxPersistCount {
		return fmt.Errorf("store: corrupt partition header")
	}
	b := &dayBlock{}
	if b.domains, err = readU32s(r, rows); err != nil {
		return err
	}
	kinds := make([]byte, rows)
	if _, err := io.ReadFull(r, kinds); err != nil {
		return err
	}
	b.kinds = make([]Kind, rows)
	for j, k := range kinds {
		if Kind(k) >= numKinds {
			return fmt.Errorf("store: bad kind %d", k)
		}
		b.kinds[j] = Kind(k)
	}
	if b.addrs, err = readU32s(r, rows); err != nil {
		return err
	}
	b.addrs6 = make([][16]byte, nV6)
	for j := range b.addrs6 {
		if _, err := io.ReadFull(r, b.addrs6[j][:]); err != nil {
			return err
		}
	}
	if b.strs, err = readU32s(r, rows); err != nil {
		return err
	}
	if b.asnOff, err = readU32s(r, rows); err != nil {
		return err
	}
	if b.asnVals, err = readU32s(r, nASN); err != nil {
		return err
	}
	if err := validateBlock(b, s.dict.Len()); err != nil {
		return err
	}
	days := s.blocks[source]
	if days == nil {
		days = make(map[simtime.Day]*dayBlock)
		s.blocks[source] = days
	}
	days[simtime.Day(day)] = b
	mPartitions.Inc()
	mResidentRows.Add(float64(b.rows()))
	return nil
}

// validateBlock checks cross-column invariants of a loaded partition so a
// corrupt file cannot cause out-of-range panics later.
func validateBlock(b *dayBlock, dictLen int) error {
	for i := range b.domains {
		if int(b.domains[i]) >= dictLen {
			return fmt.Errorf("store: domain id out of range")
		}
		if b.strs[i] != ^uint32(0) && int(b.strs[i]) >= dictLen {
			return fmt.Errorf("store: string id out of range")
		}
		if isV6Kind(b.kinds[i]) && int(b.addrs[i]) >= len(b.addrs6) {
			return fmt.Errorf("store: v6 index out of range")
		}
		if int(b.asnOff[i]) > len(b.asnVals) {
			return fmt.Errorf("store: ASN offset out of range")
		}
		if i > 0 && b.asnOff[i] < b.asnOff[i-1] {
			return fmt.Errorf("store: ASN offsets not monotone")
		}
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeU32s(w io.Writer, vals []uint32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	_, err := w.Write(buf)
	return err
}

func readU32s(r io.Reader, n uint32) ([]uint32, error) {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out, nil
}

func writeStr(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("store: string too long")
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readStr(r io.Reader) (string, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.LittleEndian.Uint16(b[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
