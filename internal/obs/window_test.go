package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source; all windowed-type boundary
// tests drive it explicitly so rotation is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowedCounterRotation(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(10*time.Second, time.Hour, clk.Now)
	if w.Step() != 10*time.Second || w.Span() != time.Hour {
		t.Fatalf("geometry = %v/%v", w.Step(), w.Span())
	}

	w.Add(5)
	if got := w.Total(FastWindow); got != 5 {
		t.Fatalf("fast total = %d, want 5", got)
	}
	if got := w.Total(SlowWindow); got != 5 {
		t.Fatalf("slow total = %d, want 5", got)
	}

	// 29 steps later the t0 bucket is still the oldest of the 30 the
	// fast window covers; one more step rotates it out exactly.
	clk.Advance(4*time.Minute + 50*time.Second)
	w.Add(2)
	if got := w.Total(FastWindow); got != 7 {
		t.Fatalf("fast total at edge = %d, want 7", got)
	}
	clk.Advance(10 * time.Second)
	if got := w.Total(FastWindow); got != 2 {
		t.Fatalf("fast total past edge = %d, want 2", got)
	}
	if got := w.Total(SlowWindow); got != 7 {
		t.Fatalf("slow total = %d, want 7", got)
	}

	// Aging past the full span empties the slow window too.
	clk.Advance(time.Hour)
	if got := w.Total(SlowWindow); got != 0 {
		t.Fatalf("slow total past span = %d, want 0", got)
	}

	// Ring reuse after wraparound only sees the fresh write.
	w.Add(3)
	if got := w.Total(SlowWindow); got != 3 {
		t.Fatalf("slow total after wraparound = %d, want 3", got)
	}

	// A write stamped before the ring advanced past its bucket is
	// dropped, not misfiled into a newer bucket.
	w.AddAt(clk.Now().Add(-2*time.Hour), 100)
	if got := w.Total(SlowWindow); got != 3 {
		t.Fatalf("slow total after stale write = %d, want 3", got)
	}
}

func TestWindowedCounterRate(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(10*time.Second, time.Hour, clk.Now)
	w.Add(600)
	if got, want := w.Rate(FastWindow), 600.0/300.0; got != want {
		t.Fatalf("rate = %v, want %v", got, want)
	}
	if got := w.Rate(0); got < 0 {
		t.Fatalf("degenerate-window rate = %v", got)
	}
}

func TestWindowedHistogramRotation(t *testing.T) {
	clk := newFakeClock()
	bounds := []float64{0.001, 0.01, 0.1}
	w := NewWindowedHistogram(bounds, 10*time.Second, time.Hour, clk.Now)

	w.Observe(0.0005)
	w.Observe(0.05)
	fast := w.Merged(FastWindow)
	if fast.Count != 2 || fast.Sum != 0.0505 {
		t.Fatalf("fast merged = count %d sum %v", fast.Count, fast.Sum)
	}
	if got, want := fast.Counts[0], uint64(1); got != want {
		t.Fatalf("bucket0 = %d", got)
	}

	clk.Advance(FastWindow)
	if got := w.Merged(FastWindow).Count; got != 0 {
		t.Fatalf("fast count past edge = %d, want 0", got)
	}
	if got := w.Merged(SlowWindow).Count; got != 2 {
		t.Fatalf("slow count = %d, want 2", got)
	}

	clk.Advance(SlowWindow)
	if got := w.Merged(SlowWindow).Count; got != 0 {
		t.Fatalf("slow count past span = %d, want 0", got)
	}

	w.Observe(0.2)
	reused := w.Merged(FastWindow)
	if reused.Count != 1 || reused.Counts[3] != 1 {
		t.Fatalf("after reuse: count %d overflow %d", reused.Count, reused.Counts[3])
	}
}

func TestWindowedHistogramQuantileDeterministic(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram(nil, 10*time.Second, time.Hour, clk.Now)
	for i := 0; i < 99; i++ {
		w.Observe(0.0008) // bucket (0.0005, 0.001]
	}
	w.Observe(0.05)
	s := w.Merged(FastWindow)
	if got := s.Quantile(0.99); got != 0.001 {
		t.Fatalf("p99 = %v, want 0.001", got)
	}
	// p50: rank 50 of 99 in bucket (0.0005, 0.001], linear interpolation.
	want := 0.0005 + (0.001-0.0005)*(50.0/99.0)
	if got := s.Quantile(0.50); got != want {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	if got := s.Mean(); got == 0 {
		t.Fatalf("mean = 0 on populated window")
	}
}

func TestWindowSnapshotGoodCount(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram([]float64{0.001, 0.01, 0.1}, 10*time.Second, time.Hour, clk.Now)
	w.Observe(0.0005)
	w.Observe(0.005)
	w.Observe(0.05)
	w.Observe(5) // overflow
	s := w.Merged(FastWindow)

	// 0.002 is not a bucket bound: snaps up to 0.01.
	good, eff := s.GoodCount(0.002)
	if good != 2 || eff != 0.01 {
		t.Fatalf("GoodCount(0.002) = %d @ %v, want 2 @ 0.01", good, eff)
	}
	// Beyond the last bound: all finite buckets are good, overflow bad.
	good, eff = s.GoodCount(1000)
	if good != 3 || eff != 0.1 {
		t.Fatalf("GoodCount(1000) = %d @ %v, want 3 @ 0.1", good, eff)
	}
	if s.Quantile(0.5) == 0 {
		t.Fatalf("quantile on populated snapshot = 0")
	}

	empty := WindowSnapshot{}
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty snapshot quantile = %v", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Fatalf("empty snapshot mean = %v", got)
	}
}

// TestWindowedConcurrentFixedTick hammers one slot from many goroutines
// while readers merge concurrently; with a pinned clock no observation
// can be dropped, so the final totals must be exact.
func TestWindowedConcurrentFixedTick(t *testing.T) {
	clk := newFakeClock()
	h := NewWindowedHistogram(nil, 10*time.Second, time.Hour, clk.Now)
	c := NewWindowedCounter(10*time.Second, time.Hour, clk.Now)

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Merged(FastWindow)
					c.Total(FastWindow)
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for i := 0; i < workers; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < perWorker; j++ {
				h.Observe(0.001)
				c.Add(1)
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if got := h.Merged(FastWindow).Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := c.Total(FastWindow); got != workers*perWorker {
		t.Fatalf("counter total = %d, want %d", got, workers*perWorker)
	}
}

// TestWindowedConcurrentRotation drives a tiny ring with a racing clock
// so slots are claimed and recycled constantly; the invariant is no
// race-detector report and no overcounting past what was written.
func TestWindowedConcurrentRotation(t *testing.T) {
	var ticks atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		return base.Add(time.Duration(ticks.Add(1)) * 100 * time.Microsecond)
	}
	h := NewWindowedHistogram([]float64{0.001}, time.Millisecond, 10*time.Millisecond, clock)
	c := NewWindowedCounter(time.Millisecond, 10*time.Millisecond, clock)

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				h.Observe(0.0005)
				c.Add(1)
				if j%64 == 0 {
					h.Merged(5 * time.Millisecond)
					c.Total(5 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Merged(h.Span()).Count; got > workers*perWorker {
		t.Fatalf("histogram overcounted: %d > %d", got, workers*perWorker)
	}
	if got := c.Total(c.Span()); got > workers*perWorker {
		t.Fatalf("counter overcounted: %d > %d", got, workers*perWorker)
	}
}

func TestWindowedRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	h := NewWindowedHistogram(nil, 10*time.Second, time.Hour, clk.Now)
	reg.RegisterWindowHistogram("test_window_seconds", "rolling latency", h)
	c := NewWindowedCounter(10*time.Second, time.Hour, clk.Now)
	reg.RegisterWindowCounter("test_window_errors", "rolling errors", c)

	h.Observe(0.002)
	c.Add(4)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_window_seconds_bucket{window="5m",le="0.0001"} 0`,
		`test_window_seconds_count{window="5m"} 1`,
		`test_window_seconds_count{window="1h"} 1`,
		`test_window_errors{window="5m"} 4`,
		"# TYPE test_window_errors gauge",
		"# TYPE test_window_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Histograms[`test_window_seconds{window="5m"}`].Count; got != 1 {
		t.Fatalf("snapshot fast count = %d", got)
	}
	if got := snap.Gauges[`test_window_errors{window="1h"}`]; got != 4 {
		t.Fatalf("snapshot slow errors = %v", got)
	}

	// Adoption is idempotent: a second registration returns the first.
	h2 := NewWindowedHistogram(nil, 10*time.Second, time.Hour, clk.Now)
	if got := reg.RegisterWindowHistogram("test_window_seconds", "dup", h2); got != h {
		t.Fatalf("adoption did not return the existing histogram")
	}
	if got := reg.WindowHistogram("test_window_seconds", "dup", nil, 0, 0); got != h {
		t.Fatalf("WindowHistogram did not return the existing histogram")
	}
}
