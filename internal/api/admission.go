package api

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is the first admission layer: a classic leaky bucket
// refilled at rate tokens/second up to burst. Allow is O(1) under one
// mutex; a request that finds the bucket empty is rejected immediately
// with 429 rather than queued — shedding at the cheapest possible point,
// before any index or cache work.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = int(rate)
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// retryAfterSeconds estimates how long until the bucket holds a full
// token again, rounded up to whole seconds (RFC 9110 Retry-After wants
// an integer) with a floor of 1 so clients never busy-loop.
func (b *tokenBucket) retryAfterSeconds() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	need := 1 - b.tokens
	if need <= 0 || b.rate <= 0 {
		return 1
	}
	secs := int(math.Ceil(need / b.rate))
	if secs < 1 {
		secs = 1
	}
	return secs
}
