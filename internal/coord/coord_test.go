package coord

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpsadopt/internal/chaos"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// synthWork deterministically builds a tiny one-partition store: the
// same (source, day) always yields the same rows, mirroring the real
// measure path under a fixed seed.
func synthWork(_ context.Context, p Partition, _ int) (*store.Store, error) {
	s := store.New()
	w := s.NewWriter(p.Source, p.Day)
	for i := 0; i < 3; i++ {
		dom := fmt.Sprintf("d%d-%d.%s", p.Day, i, p.Source)
		w.AddAddr(dom, store.KindApexA, netip.AddrFrom4([4]byte{10, 0, byte(p.Day), byte(i)}), []uint32{13335})
	}
	w.Commit()
	return s, nil
}

func testParts(sources []string, days int) []Partition {
	var out []Partition
	for _, src := range sources {
		for d := 0; d < days; d++ {
			out = append(out, Partition{Source: src, Day: simtime.Day(d)})
		}
	}
	return out
}

// fastCfg is a coordinator config with timeouts shrunk for tests.
func fastCfg(dir string) Config {
	return Config{
		Dir:            dir,
		Workers:        3,
		LeaseTTL:       150 * time.Millisecond,
		HeartbeatEvery: 25 * time.Millisecond,
		MaxAttempts:    8,
		RetryBackoff:   5 * time.Millisecond,
		Work:           synthWork,
	}
}

// runToCompletion drives a coordinator through chaos restarts until the
// ledger settles, mirroring cmd/dpscoord's driver loop.
func runToCompletion(t *testing.T, cfg Config, parts []Partition) *Coordinator {
	t.Helper()
	for i := 0; i < 50; i++ {
		c, err := New(cfg, parts)
		if err != nil {
			t.Fatal(err)
		}
		err = c.Run(context.Background())
		if errors.Is(err, ErrRestart) {
			continue
		}
		if err != nil {
			t.Fatalf("Run: %v (ledger %+v)", err, c.Stats())
		}
		return c
	}
	t.Fatal("coordinator did not settle within 50 restarts")
	return nil
}

// assertExactlyOnce checks that every partition is committed and the
// assembled dataset holds each partition's rows exactly once (synthWork
// emits 3 rows per partition; duplicates via Absorb would double them).
func assertExactlyOnce(t *testing.T, c *Coordinator, parts []Partition) {
	t.Helper()
	stats := c.Stats()
	if stats.Committed != len(parts) || stats.Failed != 0 || stats.Pending != 0 || stats.Leased != 0 {
		t.Fatalf("ledger not fully committed: %+v", stats)
	}
	assembled, damaged, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(damaged) != 0 {
		t.Fatalf("unexpected damage: %+v", damaged)
	}
	for _, p := range parts {
		n := 0
		assembled.ForEachRow(p.Source, p.Day, func(store.Row) { n++ })
		if n != 3 {
			t.Fatalf("%s: %d rows assembled, want exactly 3", p, n)
		}
	}
}

func TestCleanRunCommitsEveryPartitionOnce(t *testing.T) {
	parts := testParts([]string{"com", "nl"}, 5)
	c := runToCompletion(t, fastCfg(t.TempDir()), parts)
	assertExactlyOnce(t, c, parts)
	for _, row := range c.Ledger() {
		if row.Attempts != 1 {
			t.Errorf("%s/%s took %d attempts on a clean run", row.Source, row.Day, row.Attempts)
		}
	}
}

func TestCommitFencing(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 1
	// No supervisor runs in this test (Run is never called), so nothing
	// broadcasts when a backoff gate elapses: make the gate negligible.
	cfg.RetryBackoff = time.Nanosecond
	parts := testParts([]string{"com"}, 2)
	c, err := New(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, lease1, attempt, ok := c.acquire(context.Background())
	if !ok || attempt != 1 {
		t.Fatalf("acquire: ok=%v attempt=%d", ok, attempt)
	}
	// The lease expires (no heartbeats) and is requeued...
	time.Sleep(cfg.LeaseTTL + 20*time.Millisecond)
	c.mu.Lock()
	st := c.parts[p]
	now := time.Now()
	if st.state == StateLeased && !now.Before(st.expiry) {
		st.expiredAt = st.expiry
		c.requeueLocked(p, st, "expired in test")
	}
	c.mu.Unlock()
	// ...and re-leased under a new fencing token.
	p2, lease2, attempt2, ok := c.acquire(context.Background())
	for !ok || p2 != p {
		if !ok {
			t.Fatal("re-acquire failed")
		}
		p2, lease2, attempt2, ok = c.acquire(context.Background())
	}
	if lease2 <= lease1 {
		t.Fatalf("fencing token did not advance: %d then %d", lease1, lease2)
	}
	if attempt2 != 2 {
		t.Fatalf("attempt = %d, want 2", attempt2)
	}
	// The stale holder's heartbeat and commit are fenced off.
	if err := c.Heartbeat(p, lease1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale heartbeat err = %v, want ErrLeaseLost", err)
	}
	spool := c.SpoolPath(p)
	s, _ := synthWork(context.Background(), p, 1)
	if err := s.Save(spool); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(p, lease1, spool); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale commit err = %v, want ErrLeaseLost", err)
	}
	// The live holder commits; a replayed commit is a no-op; and the
	// stale token stays fenced even after the commit.
	if err := c.Commit(p, lease2, spool); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(p, lease2, spool); err != nil {
		t.Fatalf("duplicate commit err = %v, want nil (idempotent)", err)
	}
	if got := c.Stats().Committed; got != 1 {
		t.Fatalf("committed = %d after duplicate commit", got)
	}
}

func TestJournalReplaySkipsCommittedRequeuesLeased(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	parts := testParts([]string{"com"}, 3)
	c, err := New(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Commit partition 0; leave partition 1 leased; partition 2 pending.
	p0, l0, _, ok := c.acquire(context.Background())
	if !ok {
		t.Fatal("acquire p0")
	}
	s, _ := synthWork(context.Background(), p0, 1)
	if err := s.Save(c.SpoolPath(p0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(p0, l0, c.SpoolPath(p0)); err != nil {
		t.Fatal(err)
	}
	p1, _, _, ok := c.acquire(context.Background())
	if !ok {
		t.Fatal("acquire p1")
	}
	c.Close() // coordinator "crashes" with p1 still leased

	measured := int32(0)
	cfg.Work = func(ctx context.Context, p Partition, attempt int) (*store.Store, error) {
		if p == p0 {
			t.Errorf("committed partition %s re-measured after replay", p)
		}
		atomic.AddInt32(&measured, 1)
		return synthWork(ctx, p, attempt)
	}
	c2, err := New(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Replay requeued the leased partition.
	c2.mu.Lock()
	if got := c2.parts[p1].state; got != StatePending {
		t.Fatalf("replayed leased partition state = %s, want pending", got)
	}
	if got := c2.parts[p0].state; got != StateCommitted {
		t.Fatalf("replayed committed partition state = %s, want committed", got)
	}
	c2.mu.Unlock()
	if err := c2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, c2, parts)
	if atomic.LoadInt32(&measured) != 2 {
		t.Fatalf("measured %d partitions after replay, want 2", measured)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	parts := testParts([]string{"com"}, 2)
	c, err := New(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	p, l, _, ok := c.acquire(context.Background())
	if !ok {
		t.Fatal("acquire")
	}
	s, _ := synthWork(context.Background(), p, 1)
	if err := s.Save(c.SpoolPath(p)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(p, l, c.SpoolPath(p)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Tear the journal mid-append.
	jp := filepath.Join(dir, "journal.jsonl")
	if err := os.WriteFile(jp, appendBytes(t, jp, []byte(`{"seq":99,"type":"com`)), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := New(cfg, parts)
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if got := c2.Stats().Committed; got != 1 {
		t.Fatalf("committed after torn-tail replay = %d, want 1", got)
	}
	if err := c2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, c2, parts)
}

func appendBytes(t *testing.T, path string, tail []byte) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return append(data, tail...)
}

func TestPermanentFailureAfterMaxAttempts(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 2
	cfg.MaxAttempts = 3
	attempts := int32(0)
	cfg.Work = func(ctx context.Context, p Partition, attempt int) (*store.Store, error) {
		if p.Source == "bad" {
			atomic.AddInt32(&attempts, 1)
			return nil, errors.New("synthetic measure failure")
		}
		return synthWork(ctx, p, attempt)
	}
	parts := []Partition{{Source: "bad", Day: 0}, {Source: "com", Day: 0}}
	c, err := New(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(context.Background())
	if !errors.Is(err, ErrPartitionsFailed) {
		t.Fatalf("Run err = %v, want ErrPartitionsFailed", err)
	}
	if got := atomic.LoadInt32(&attempts); got != 3 {
		t.Fatalf("bad partition measured %d times, want MaxAttempts=3", got)
	}
	for _, row := range c.Ledger() {
		switch row.Source {
		case "bad":
			if row.State != StateFailed || !strings.Contains(row.Err, "synthetic measure failure") {
				t.Fatalf("bad row = %+v", row)
			}
		case "com":
			if row.State != StateCommitted {
				t.Fatalf("com row = %+v", row)
			}
		}
	}
}

func TestRetryBackoffSpacesAttempts(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 1
	cfg.MaxAttempts = 3
	cfg.RetryBackoff = 40 * time.Millisecond
	var times []time.Time
	cfg.Work = func(context.Context, Partition, int) (*store.Store, error) {
		times = append(times, time.Now())
		return nil, errors.New("always fails")
	}
	c, err := New(cfg, []Partition{{Source: "com", Day: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); !errors.Is(err, ErrPartitionsFailed) {
		t.Fatalf("err = %v", err)
	}
	if len(times) != 3 {
		t.Fatalf("%d attempts, want 3", len(times))
	}
	// Attempt 2 waits >= backoff, attempt 3 >= 2*backoff.
	if gap := times[1].Sub(times[0]); gap < cfg.RetryBackoff {
		t.Errorf("attempt 2 after %v, want >= %v", gap, cfg.RetryBackoff)
	}
	if gap := times[2].Sub(times[1]); gap < 2*cfg.RetryBackoff {
		t.Errorf("attempt 3 after %v, want >= %v", gap, 2*cfg.RetryBackoff)
	}
}

func TestCancellationPreservesCommitted(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 1
	parts := testParts([]string{"com"}, 6)
	ctx, cancel := context.WithCancel(context.Background())
	committed := int32(0)
	inner := cfg.Work
	cfg.Work = func(c context.Context, p Partition, a int) (*store.Store, error) {
		if atomic.AddInt32(&committed, 1) == 3 {
			cancel() // SIGTERM arrives mid-run
		}
		return inner(c, p, a)
	}
	c, err := New(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	stats := c.Stats()
	if stats.Committed == 0 || stats.Committed == len(parts) {
		t.Fatalf("committed = %d, want partial progress", stats.Committed)
	}
	// The committed-so-far ledger is durable: a fresh coordinator picks
	// up only the remainder.
	c2, err := New(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Stats().Committed; got != stats.Committed {
		t.Fatalf("replayed committed = %d, want %d", got, stats.Committed)
	}
	if err := c2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, c2, parts)
}

// chaosRun drives a scenario to completion and asserts exactly-once.
func chaosRun(t *testing.T, scenario string, seed uint64) *Coordinator {
	t.Helper()
	cfg := fastCfg(t.TempDir())
	sc, err := chaos.Scenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = chaos.NewCoordFaults(sc, seed)
	cfg.Seed = seed
	parts := testParts([]string{"com", "net", "nl"}, 6)
	c := runToCompletion(t, cfg, parts)
	assertExactlyOnce(t, c, parts)
	return c
}

func TestWorkerCrashScenarioExactlyOnce(t *testing.T) {
	c := chaosRun(t, "worker-crash", 11)
	retried := 0
	for _, row := range c.Ledger() {
		if row.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("worker-crash run never burned an attempt — chaos not exercised")
	}
}

func TestWorkerStallScenarioExactlyOnce(t *testing.T) { chaosRun(t, "worker-stall", 5) }

func TestDupCommitScenarioExactlyOnce(t *testing.T) { chaosRun(t, "dup-commit", 3) }

func TestCoordRestartScenarioExactlyOnce(t *testing.T) { chaosRun(t, "coord-restart", 9) }

func TestCoordHavocScenarioExactlyOnce(t *testing.T) { chaosRun(t, "coord-havoc", 17) }

func TestTornWriteScenarioQuarantinesDamage(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	sc, err := chaos.Scenario("torn-write")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = chaos.NewCoordFaults(sc, 21)
	parts := testParts([]string{"com", "nl"}, 8)
	c := runToCompletion(t, cfg, parts)
	if got := c.Stats().Committed; got != len(parts) {
		t.Fatalf("committed = %d, want %d", got, len(parts))
	}
	assembled, damaged, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(damaged) == 0 {
		t.Fatal("torn-write at 0.5 over 16 partitions damaged nothing")
	}
	hurt := map[Partition]bool{}
	for _, d := range damaged {
		hurt[d.Partition] = true
		if d.Err == "" || d.QuarantinePath == "" {
			t.Fatalf("damage report incomplete: %+v", d)
		}
		if _, err := os.Stat(d.QuarantinePath); err != nil {
			t.Fatalf("quarantined spool missing: %v", err)
		}
		if !strings.Contains(d.QuarantinePath, "quarantine") {
			t.Fatalf("quarantine path %q outside quarantine/", d.QuarantinePath)
		}
	}
	// Surviving partitions assembled exactly once; damaged ones absent.
	for _, p := range parts {
		n := 0
		assembled.ForEachRow(p.Source, p.Day, func(store.Row) { n++ })
		if hurt[p] && n != 0 {
			t.Fatalf("%s: damaged partition contributed %d rows", p, n)
		}
		if !hurt[p] && n != 3 {
			t.Fatalf("%s: surviving partition has %d rows, want 3", p, n)
		}
	}
}
