// Package dnsclient implements the measuring resolver used by the active
// DNS measurement pipeline. It performs iterative resolution from a set of
// root servers: following referrals down zone cuts, resolving glueless name
// servers, chasing CNAME chains across zones, and retrying lost datagrams —
// capturing the full answer expansion exactly as the paper's measurement
// system stores it (§3.1: "All fields from the answer section of a DNS
// response are stored, which includes CNAMEs and their full expansions").
package dnsclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync/atomic"
	"time"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/trace"
	"dpsadopt/internal/transport"
)

// Tunables with sensible defaults; see NewResolver.
const (
	DefaultTimeout  = 500 * time.Millisecond
	DefaultRetries  = 2
	defaultMaxSteps = 24 // referral hops across one resolution
	maxCNAMEHops    = 8  // cross-zone CNAME restarts
	maxGlueDepth    = 3  // recursion when resolving glueless NS hosts

	// DefaultBackoff is the base delay before the first retransmission;
	// each further retry doubles it (capped at DefaultMaxBackoff), with
	// deterministic jitter drawn from the resolver's seeded PRNG.
	DefaultBackoff    = 10 * time.Millisecond
	DefaultMaxBackoff = 200 * time.Millisecond
	// DefaultRetryBudget caps retransmissions across one whole resolution
	// (all referral steps and glue chases included), so a resolution
	// through dead infrastructure fails fast instead of stalling a
	// measurement day: at most budget × timeout extra wall time.
	DefaultRetryBudget = 16
)

// Errors returned by resolution.
var (
	ErrNoServers  = errors.New("dnsclient: no servers to query")
	ErrExhausted  = errors.New("dnsclient: retries exhausted")
	ErrTooManyRef = errors.New("dnsclient: referral limit exceeded")
	ErrBudget     = errors.New("dnsclient: resolution retry budget exhausted")
)

// Result is the outcome of resolving one (name, type) pair.
type Result struct {
	RCode dnswire.RCode
	// Records holds the complete answer expansion: every answer-section
	// record collected across CNAME restarts, in chain order.
	Records []dnswire.RR
	// Queries counts datagrams sent to obtain this result.
	Queries int
	// Timeouts counts attempts that expired without a response.
	Timeouts int

	// budget is the remaining retransmission allowance for this
	// resolution, shared across referral steps and glue chases.
	budget int
}

// takeRetry consumes one retransmission from the resolution budget.
func (r *Result) takeRetry() bool {
	if r == nil {
		return true // budget-less exchange (AXFR helpers)
	}
	if r.budget <= 0 {
		return false
	}
	r.budget--
	return true
}

// Addrs extracts the final A/AAAA addresses from the expansion.
func (r *Result) Addrs() []netip.Addr {
	var out []netip.Addr
	for _, rr := range r.Records {
		switch d := rr.Data.(type) {
		case dnswire.A:
			out = append(out, d.Addr)
		case dnswire.AAAA:
			out = append(out, d.Addr)
		}
	}
	return out
}

// CNAMEs extracts the CNAME chain targets from the expansion, in order.
func (r *Result) CNAMEs() []string {
	var out []string
	for _, rr := range r.Records {
		if c, ok := rr.Data.(dnswire.CNAME); ok {
			out = append(out, c.Target)
		}
	}
	return out
}

// Resolver performs iterative resolution. It is not safe for concurrent
// use: the measurement pipeline creates one Resolver per worker.
type Resolver struct {
	Timeout  time.Duration
	Retries  int
	MaxSteps int
	// UDPSize is the EDNS0 payload size advertised on queries; answers
	// larger than this arrive truncated and are retried over TCP when
	// the network supports streams. Defaults to the transport MTU.
	UDPSize int
	// Backoff/MaxBackoff shape the exponential retransmission delay; a
	// zero Backoff disables backoff sleeps entirely (retries fire
	// immediately, the pre-hardening behaviour).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// RetryBudget caps retransmissions per resolution (see
	// DefaultRetryBudget); 0 or negative means unlimited.
	RetryBudget int

	net   transport.Network
	conn  transport.Conn
	roots []netip.AddrPort
	rng   *rand.Rand
	buf   []byte

	// cache maps a zone origin to the addresses of its authoritative
	// servers, learned from referrals. It makes measuring a whole TLD
	// tractable: the TLD referral is taken once, not per domain.
	cache map[string][]netip.AddrPort

	// health scores every server this resolver has exchanged with and
	// runs the per-server circuit breaker.
	health *healthTable
	// rot rotates the starting server across resolutions for fairness.
	rot uint64

	// queries counts datagrams sent, for stats. Atomic so a stats
	// scraper (or a future shared-resolver caller) can read it while
	// the resolver is mid-resolution without racing. timeouts,
	// resolutions and giveups feed the per-day failure accounting.
	queries     atomic.Int64
	timeouts    atomic.Int64
	resolutions atomic.Int64
	giveups     atomic.Int64
}

// NewResolver creates a resolver bound to an ephemeral port on local,
// seeded for reproducible query IDs.
func NewResolver(network transport.Network, local netip.Addr, roots []netip.AddrPort, seed int64) (*Resolver, error) {
	if len(roots) == 0 {
		return nil, ErrNoServers
	}
	conn, err := network.Dial(local)
	if err != nil {
		return nil, err
	}
	return &Resolver{
		Timeout:     DefaultTimeout,
		Retries:     DefaultRetries,
		MaxSteps:    defaultMaxSteps,
		UDPSize:     transport.MTU,
		Backoff:     DefaultBackoff,
		MaxBackoff:  DefaultMaxBackoff,
		RetryBudget: DefaultRetryBudget,
		net:         network,
		conn:        conn,
		roots:       append([]netip.AddrPort(nil), roots...),
		rng:         rand.New(rand.NewSource(seed)),
		buf:         make([]byte, transport.MTU),
		cache:       make(map[string][]netip.AddrPort),
		health:      newHealthTable(),
	}, nil
}

// Close releases the resolver's socket.
func (r *Resolver) Close() error { return r.conn.Close() }

// QueriesSent returns the total number of query datagrams sent. Safe to
// call concurrently with an in-flight resolution.
func (r *Resolver) QueriesSent() int64 { return r.queries.Load() }

// TimeoutsSeen returns the total attempts that expired unanswered — the
// "lost" column of the per-day failure accounting. Safe concurrently.
func (r *Resolver) TimeoutsSeen() int64 { return r.timeouts.Load() }

// Resolutions returns the number of Resolve calls made. Safe concurrently.
func (r *Resolver) Resolutions() int64 { return r.resolutions.Load() }

// GiveUps returns the number of resolutions that returned an error — the
// "gave-up" column of the per-day failure accounting. Safe concurrently.
func (r *Resolver) GiveUps() int64 { return r.giveups.Load() }

// ServerScore exposes the health EWMA of one server in [0,1] (1 when the
// server has never been queried), for tests and diagnostics.
func (r *Resolver) ServerScore(s netip.AddrPort) float64 { return r.health.Score(s) }

// FlushCache drops learned referrals; the daily measurement loop calls it
// between days so delegation changes are observed.
func (r *Resolver) FlushCache() {
	r.cache = make(map[string][]netip.AddrPort)
}

// Resolve iteratively resolves name/qtype, chasing CNAMEs across zones.
// The context carries cancellation (checked between datagram exchanges)
// and the active trace span: when the caller's context holds a sampled
// span, the resolution is recorded as a `dnsclient.resolve` span with
// `transport.send` children per datagram exchange.
func (r *Resolver) Resolve(ctx context.Context, name string, qtype dnswire.Type) (*Result, error) {
	qname, err := dnswire.CanonicalName(name)
	if err != nil {
		return nil, err
	}
	ctx, sp := trace.StartSpan(ctx, "dnsclient.resolve",
		trace.Str("name", qname), trace.Str("qtype", qtype.String()))
	defer sp.End()
	r.rot++ // rotate the starting server across resolutions
	r.resolutions.Add(1)
	budget := r.RetryBudget
	if budget <= 0 {
		budget = int(^uint(0) >> 1) // unlimited
	}
	res := &Result{RCode: dnswire.RCodeNoError, budget: budget}
	seen := map[string]bool{}
	for hop := 0; hop <= maxCNAMEHops; hop++ {
		if seen[qname] {
			break // CNAME loop across zones
		}
		seen[qname] = true
		resp, err := r.resolveOne(ctx, qname, qtype, res, 0)
		if err != nil {
			mErrors.Inc()
			r.giveups.Add(1)
			sp.SetAttr(trace.Str("error", err.Error()))
			return res, err
		}
		res.RCode = resp.Flags.RCode
		res.Records = append(res.Records, resp.Answers...)
		// If the tail of the chain is a CNAME and we asked for something
		// else, restart at the target.
		next := chainTail(resp.Answers, qtype)
		if next == "" {
			sp.SetAttr(trace.Str("rcode", res.RCode.String()),
				trace.Int("queries", int64(res.Queries)),
				trace.Int("records", int64(len(res.Records))))
			return res, nil
		}
		qname = next
	}
	sp.SetAttr(trace.Str("rcode", res.RCode.String()),
		trace.Int("queries", int64(res.Queries)))
	return res, nil
}

// chainTail returns the target of the final CNAME if the response ended on
// one without answering qtype.
func chainTail(answers []dnswire.RR, qtype dnswire.Type) string {
	if qtype == dnswire.TypeCNAME || qtype == dnswire.TypeANY || len(answers) == 0 {
		return ""
	}
	last := answers[len(answers)-1]
	if c, ok := last.Data.(dnswire.CNAME); ok {
		return c.Target
	}
	return ""
}

// resolveOne walks referrals from the closest cached cut (or the roots)
// until it gets an authoritative answer for qname.
func (r *Resolver) resolveOne(ctx context.Context, qname string, qtype dnswire.Type, res *Result, glueDepth int) (*dnswire.Message, error) {
	servers, _ := r.bestServers(qname)
	for step := 0; step < r.MaxSteps; step++ {
		if len(servers) == 0 {
			return nil, ErrNoServers
		}
		resp, err := r.exchange(ctx, servers, qname, qtype, res)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.Flags.RCode == dnswire.RCodeNXDomain,
			resp.Flags.RCode != dnswire.RCodeNoError && resp.Flags.RCode != dnswire.RCodeNXDomain,
			len(resp.Answers) > 0,
			resp.Flags.Authoritative:
			// Terminal: an answer, an authoritative negative, or an error.
			return resp, nil
		default:
			// Referral: learn the cut and descend.
			next, origin := r.referralServers(ctx, resp, res, glueDepth)
			if len(next) == 0 {
				return resp, nil // dead end; surface what we have
			}
			if origin != "" {
				r.cache[origin] = next
			}
			servers = next
		}
	}
	return nil, ErrTooManyRef
}

// bestServers returns the cached servers for the deepest known ancestor of
// qname, falling back to the roots.
func (r *Resolver) bestServers(qname string) ([]netip.AddrPort, string) {
	for cand := qname; ; cand = dnswire.Parent(cand) {
		if s, ok := r.cache[cand]; ok && len(s) > 0 {
			return s, cand
		}
		if cand == "." {
			return r.roots, "."
		}
	}
}

// referralServers extracts the delegation from a referral response,
// resolving glueless NS hosts if needed.
func (r *Resolver) referralServers(ctx context.Context, resp *dnswire.Message, res *Result, glueDepth int) ([]netip.AddrPort, string) {
	glue := map[string][]netip.Addr{}
	for _, rr := range resp.Extra {
		switch d := rr.Data.(type) {
		case dnswire.A:
			glue[rr.Name] = append(glue[rr.Name], d.Addr)
		case dnswire.AAAA:
			glue[rr.Name] = append(glue[rr.Name], d.Addr)
		}
	}
	var out []netip.AddrPort
	origin := ""
	var glueless []string
	for _, rr := range resp.Authority {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		origin = rr.Name
		if addrs, ok := glue[ns.Host]; ok {
			for _, a := range addrs {
				out = append(out, netip.AddrPortFrom(a, transport.DNSPort))
			}
		} else {
			glueless = append(glueless, ns.Host)
		}
	}
	// Resolve glueless NS hosts only if no glued server is available.
	if len(out) == 0 && glueDepth < maxGlueDepth {
		for _, host := range glueless {
			sub, err := r.resolveOne(ctx, host, dnswire.TypeA, res, glueDepth+1)
			if err != nil {
				continue
			}
			for _, rr := range sub.Answers {
				if a, ok := rr.Data.(dnswire.A); ok {
					out = append(out, netip.AddrPortFrom(a.Addr, transport.DNSPort))
				}
			}
		}
	}
	return out, origin
}

// exchange sends the query to the servers in order, retrying on timeout,
// and returns the first matching response. Each attempt is traced as a
// `transport.send` span when the context carries a sampled span; the
// query-latency histogram records the trace ID of the slowest query per
// bucket as an exemplar. Cancelling the context aborts between attempts.
func (r *Resolver) exchange(ctx context.Context, servers []netip.AddrPort, qname string, qtype dnswire.Type, res *Result) (*dnswire.Message, error) {
	q := dnswire.NewQuery(uint16(r.rng.Uint32()), qname, qtype)
	// Advertise an EDNS0 payload size so TLD referrals with glue fit.
	size := r.UDPSize
	if size <= 0 || size > transport.MTU {
		size = transport.MTU
	}
	q.Extra = append(q.Extra, dnswire.RR{
		Name: ".", Type: dnswire.TypeOPT, Class: dnswire.Class(size), Data: dnswire.OPT{},
	})
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	var traceID string
	if sp := trace.SpanFromContext(ctx); sp != nil {
		traceID = sp.TraceID().String()
	}
	// Advance the logical clock (breaker cooldowns are measured in
	// exchanges) and order the candidate servers healthy-first, rotated by
	// the per-resolution fairness counter.
	r.health.tick++
	order := r.health.order(servers, r.rot)
	for attempt := 0; attempt <= r.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		server := order[attempt%len(order)]
		if attempt > 0 {
			if !res.takeRetry() {
				mBudgetExhausted.Inc()
				return nil, fmt.Errorf("%w: %s %s", ErrBudget, qname, qtype)
			}
			mRetries.Inc()
			if err := r.backoffSleep(ctx, attempt); err != nil {
				return nil, err
			}
		}
		_, ssp := trace.StartSpan(ctx, "transport.send",
			trace.Str("server", server.String()), trace.Int("attempt", int64(attempt)),
			trace.Int("bytes", int64(len(wire))))
		if err := r.conn.WriteTo(wire, server); err != nil {
			ssp.SetAttr(trace.Str("error", err.Error()))
			ssp.End()
			return nil, err
		}
		r.queries.Add(1)
		mQueries.Inc()
		if res != nil {
			res.Queries++
		}
		sent := time.Now()
		deadline := sent.Add(r.Timeout)
		for {
			remain := time.Until(deadline)
			if remain <= 0 {
				ssp.SetAttr(trace.Str("outcome", "timeout"))
				ssp.End()
				break // retry
			}
			n, from, err := r.conn.ReadFrom(r.buf, remain)
			if err == transport.ErrTimeout {
				ssp.SetAttr(trace.Str("outcome", "timeout"))
				ssp.End()
				break
			}
			if err != nil {
				ssp.SetAttr(trace.Str("error", err.Error()))
				ssp.End()
				return nil, err
			}
			if from != server {
				continue // stray datagram
			}
			resp, err := dnswire.Unpack(r.buf[:n])
			if err != nil || resp.ID != q.ID || !resp.Flags.Response {
				continue // malformed or mismatched: keep waiting
			}
			if len(resp.Questions) != 1 || !questionMatches(resp.Questions[0], qname, qtype) {
				continue
			}
			mQueryLatency.ObserveExemplar(time.Since(sent).Seconds(), traceID)
			r.health.ok(server)
			if resp.Flags.Truncated {
				// RFC 1035 §4.2.2: retry over TCP. Keep the truncated
				// response if the stream path is unavailable or fails.
				mTCPFallback.Inc()
				ssp.SetAttr(trace.Str("outcome", "truncated"))
				ssp.End()
				if full, err := r.exchangeTCP(ctx, server, wire, q.ID, qname, qtype); err == nil {
					mRCodes.With(full.Flags.RCode.String()).Inc()
					return full, nil
				}
				mRCodes.With(resp.Flags.RCode.String()).Inc()
				return resp, nil
			}
			ssp.SetAttr(trace.Str("outcome", "response"), trace.Int("resp_bytes", int64(n)))
			ssp.End()
			mRCodes.With(resp.Flags.RCode.String()).Inc()
			return resp, nil
		}
		// Only a timed-out attempt reaches here: every response path
		// returned above. Account it and mark the server against the
		// circuit breaker before the next attempt tries elsewhere.
		mTimeouts.Inc()
		r.timeouts.Add(1)
		if res != nil {
			res.Timeouts++
		}
		r.health.fail(server)
	}
	return nil, fmt.Errorf("%w: %s %s", ErrExhausted, qname, qtype)
}

// backoffSleep waits the exponential retransmission delay before attempt
// (1-based), with deterministic jitter in [d/2, d] drawn from the
// resolver's seeded PRNG. A zero Backoff disables the sleep. Cancelling
// the context aborts the wait.
func (r *Resolver) backoffSleep(ctx context.Context, attempt int) error {
	if r.Backoff <= 0 {
		return nil
	}
	d := r.Backoff << (attempt - 1)
	if r.MaxBackoff > 0 && d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	d = d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// exchangeTCP repeats one query over a stream connection.
func (r *Resolver) exchangeTCP(ctx context.Context, server netip.AddrPort, wire []byte, id uint16, qname string, qtype dnswire.Type) (*dnswire.Message, error) {
	sn, ok := r.net.(transport.StreamNetwork)
	if !ok {
		return nil, fmt.Errorf("dnsclient: transport has no stream support")
	}
	_, ssp := trace.StartSpan(ctx, "transport.tcp",
		trace.Str("server", server.String()))
	defer ssp.End()
	conn, err := sn.DialStream(r.conn.LocalAddr().Addr(), server)
	if err != nil {
		ssp.SetAttr(trace.Str("error", err.Error()))
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(r.Timeout * 4)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	if err := dnswire.WriteFramed(conn, wire); err != nil {
		return nil, err
	}
	r.queries.Add(1)
	mQueries.Inc()
	msg, err := dnswire.ReadFramed(conn)
	if err != nil {
		return nil, err
	}
	resp, err := dnswire.Unpack(msg)
	if err != nil {
		return nil, err
	}
	if resp.ID != id || !resp.Flags.Response || len(resp.Questions) != 1 || !questionMatches(resp.Questions[0], qname, qtype) {
		return nil, fmt.Errorf("dnsclient: TCP response mismatch")
	}
	return resp, nil
}

func questionMatches(q dnswire.Question, name string, t dnswire.Type) bool {
	c, err := dnswire.CanonicalName(q.Name)
	return err == nil && c == name && q.Type == t
}
