package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"
)

// approx absorbs the float error of (bad/total)/(1-target): the division
// by a tiny budget amplifies the representation error of 0.999.
func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func testObservatory(clk *fakeClock, reg *Registry) *Observatory {
	return NewObservatory(ObservatoryConfig{
		Clock:              clk.Now,
		Registry:           reg,
		WindowMetricPrefix: "test_request_window",
		SLOs: []Objective{
			{Name: "r-availability", Route: "r", Kind: KindAvailability, Target: 0.999},
			{Name: "r-latency", Route: "r", Kind: KindLatency, Target: 0.99, LatencyThreshold: 0.005},
		},
	})
}

// loadMixed records 990 fast successes and 10 slow server errors at the
// observatory's current clock.
func loadMixed(o *Observatory) {
	for i := 0; i < 990; i++ {
		o.RecordRequest("r", 0.0008, 200, RequestOutcome{CacheHit: i%2 == 0})
	}
	for i := 0; i < 10; i++ {
		o.RecordRequest("r", 0.05, 500, RequestOutcome{})
	}
}

func TestScorecardBurnRatesDeterministic(t *testing.T) {
	clk := newFakeClock()
	o := testObservatory(clk, nil)
	loadMixed(o)

	sc := o.Scorecard()
	if len(sc.Objectives) != 2 {
		t.Fatalf("objectives = %d", len(sc.Objectives))
	}
	avail, lat := sc.Objectives[0], sc.Objectives[1]

	// Availability: 10 bad of 1000 at a 0.001 budget → burn exactly 10
	// in both windows (all traffic is inside the fast window).
	for _, ws := range []WindowScore{avail.Fast, avail.Slow} {
		if ws.Total != 1000 || ws.Bad != 10 {
			t.Fatalf("avail %s: total %d bad %d", ws.Window, ws.Total, ws.Bad)
		}
		if !approx(ws.BurnRate, 10) {
			t.Fatalf("avail %s burn = %v, want 10", ws.Window, ws.BurnRate)
		}
		if ws.GoodRatio != 0.99 {
			t.Fatalf("avail %s good ratio = %v", ws.Window, ws.GoodRatio)
		}
	}
	if avail.Status != "warn" {
		t.Fatalf("avail status = %q, want warn (burn 10 is past warn 3, short of page 14.4)", avail.Status)
	}

	// Latency: threshold 0.005 is an exact bucket bound; 10 of 1000
	// exceeded it at a 0.01 budget → burn exactly 1.
	if lat.EffectiveThreshold != 0.005 {
		t.Fatalf("effective threshold = %v", lat.EffectiveThreshold)
	}
	if lat.Fast.Bad != 10 || !approx(lat.Fast.BurnRate, 1) {
		t.Fatalf("lat fast: bad %d burn %v, want 10 / 1", lat.Fast.Bad, lat.Fast.BurnRate)
	}
	if lat.Status != "ok" {
		t.Fatalf("lat status = %q", lat.Status)
	}
	// p99 of 990×0.0008 + 10×0.05 lands exactly on the 0.001 bound.
	if lat.P99FastS != 0.001 {
		t.Fatalf("p99 fast = %v, want 0.001", lat.P99FastS)
	}
}

func TestScorecardWindowDivergence(t *testing.T) {
	clk := newFakeClock()
	o := testObservatory(clk, nil)
	loadMixed(o)

	// Six minutes later the errors have aged out of the fast window but
	// not the slow one: fast burn 0 forces status back to ok (the
	// two-window minimum), while the slow window still shows the burn.
	clk.Advance(6 * time.Minute)
	sc := o.Scorecard()
	avail := sc.Objectives[0]
	if avail.Fast.Total != 0 || avail.Fast.BurnRate != 0 {
		t.Fatalf("fast after aging: total %d burn %v", avail.Fast.Total, avail.Fast.BurnRate)
	}
	if avail.Slow.Total != 1000 || !approx(avail.Slow.BurnRate, 10) {
		t.Fatalf("slow after aging: total %d burn %v", avail.Slow.Total, avail.Slow.BurnRate)
	}
	if avail.Status != "ok" {
		t.Fatalf("status = %q, want ok", avail.Status)
	}
}

func TestScorecardZeroTraffic(t *testing.T) {
	clk := newFakeClock()
	o := testObservatory(clk, nil)
	sc := o.Scorecard()
	for _, obj := range sc.Objectives {
		if obj.Fast.BurnRate != 0 || obj.Slow.BurnRate != 0 {
			t.Fatalf("%s burns on zero traffic: %v/%v", obj.Name, obj.Fast.BurnRate, obj.Slow.BurnRate)
		}
		if obj.Status != "ok" {
			t.Fatalf("%s status = %q on zero traffic", obj.Name, obj.Status)
		}
	}
	ok, warn, breach := sc.CountStatus()
	if ok != 2 || warn != 0 || breach != 0 {
		t.Fatalf("counts = %d/%d/%d", ok, warn, breach)
	}
}

func TestPublishGaugesAndTransitions(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry()
	o := testObservatory(clk, reg)
	loadMixed(o)
	o.RecordKey("domain", "alpha.com")
	o.RecordKey("domain", "alpha.com")
	o.RecordKey("domain", "beta.com")

	o.Publish()

	m, ok := reg.Lookup("slo_burn_rate")
	if !ok {
		t.Fatalf("slo_burn_rate not registered")
	}
	if got := m.(*GaugeVec).With("r-availability:5m").Value(); !approx(got, 10) {
		t.Fatalf("burn gauge = %v, want 10", got)
	}
	st, _ := reg.Lookup("slo_status")
	if got := st.(*GaugeVec).With("r-availability").Value(); got != 1 {
		t.Fatalf("status gauge = %v, want 1 (warn)", got)
	}
	hh, _ := reg.Lookup("heavy_hitter_tracked_keys")
	if got := hh.(*GaugeVec).With("domain").Value(); got != 2 {
		t.Fatalf("tracked keys = %v, want 2", got)
	}

	// The per-route window series were adopted into the registry.
	snap := reg.Snapshot()
	if got := snap.Histograms[`test_request_window_seconds_r{window="5m"}`].Count; got != 1000 {
		t.Fatalf("windowed series count = %d, want 1000", got)
	}

	// Worst picks the highest two-window burn.
	name, burn := o.Scorecard().Worst()
	if name != "r-availability" || !approx(burn, 10) {
		t.Fatalf("worst = %s/%v", name, burn)
	}
}

func TestSLOHandler(t *testing.T) {
	clk := newFakeClock()
	o := testObservatory(clk, nil)
	loadMixed(o)

	rec := httptest.NewRecorder()
	o.SLOHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var sc Scorecard
	if err := json.Unmarshal(rec.Body.Bytes(), &sc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(sc.Objectives) != 2 || sc.FastWindow != "5m0s" || sc.PageBurn != DefaultPageBurn {
		t.Fatalf("scorecard = %+v", sc)
	}
	if !approx(sc.Objectives[0].Fast.BurnRate, 10) {
		t.Fatalf("served burn = %v", sc.Objectives[0].Fast.BurnRate)
	}
}

func TestObservatoryNilSafe(t *testing.T) {
	var o *Observatory
	o.RecordRequest("r", 0.001, 200, RequestOutcome{})
	o.RecordKey("domain", "x")
	if o.Summary() != nil {
		t.Fatalf("nil observatory summary != nil")
	}
	o.StartEvaluator(time.Second)()
	o.Publish()
}

func TestObservatorySummary(t *testing.T) {
	clk := newFakeClock()
	o := testObservatory(clk, nil)
	loadMixed(o)
	o.RecordKey("domain", "alpha.com")

	sum := o.Summary()
	r := sum.Routes["r"]
	if r.Requests5m != 1000 || r.Errors5m != 10 {
		t.Fatalf("route summary = %+v", r)
	}
	if r.P99MS5m != 1 { // 0.001s
		t.Fatalf("p99 ms = %v, want 1", r.P99MS5m)
	}
	if sum.SLOStatus["r-availability"] != "warn" {
		t.Fatalf("slo status = %+v", sum.SLOStatus)
	}
	if len(sum.TopK["domain"]) != 1 || sum.TopK["domain"][0].Key != "alpha.com" {
		t.Fatalf("topk head = %+v", sum.TopK)
	}
}
